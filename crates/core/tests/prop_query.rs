//! Differential property tests of the path-query evaluators.
//!
//! For random documents (stored both through the streaming bulkloader and
//! through the per-node oracle path) and random generated path queries:
//!
//! * the **parallel** evaluator (forced past its sequential fallback with
//!   a threshold of 1) must return exactly what the **sequential**
//!   evaluator returns, across thread counts;
//! * both must agree with a **naive in-memory DOM oracle** that evaluates
//!   the same steps over the parsed `Document`, node for node;
//! * the multi-document fan-out must agree with per-document sequential
//!   evaluation.
//!
//! Node identity across the storage/DOM boundary is compared by pre-order
//! position: generated text stays below the chunking limit, so stored
//! documents correspond 1:1 to their DOM in pre-order.
//!
//! No network access at build time, so the cases are driven by the local
//! SplitMix64 generator over many seeds — reproducible by seed.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use natix::{
    DocId, LabelIndex, NatixError, NodeId, ParallelQueryOptions, PathQuery, PlanShape,
    PlannerOptions, Repository, RepositoryOptions,
};
use natix_corpus::SplitMix64 as Gen;
use natix_xml::{Document, NodeData, NodeIdx, SymbolTable, LABEL_TEXT};
use parking_lot::Mutex;

const TAGS: &[&str] = &["a", "b", "c", "d", "e"];

/// A random element-rooted document with short texts (strictly below the
/// chunk limit of every page size used here, so stored nodes correspond
/// 1:1 to DOM nodes in pre-order) and occasional attributes.
fn random_document(g: &mut Gen, syms: &mut SymbolTable) -> Document {
    let root = syms.intern_element(TAGS[g.below(TAGS.len())]);
    let mut doc = Document::new(NodeData::Element(root));
    let mut open = vec![doc.root()];
    for _ in 0..1 + g.below(300) {
        let parent = open[g.below(open.len())];
        match g.below(10) {
            0..=5 => {
                let label = syms.intern_element(TAGS[g.below(TAGS.len())]);
                let e = doc.add_child(parent, NodeData::Element(label));
                if g.below(3) > 0 && open.len() < 10 {
                    open.push(e);
                }
            }
            6 => {
                let label = syms.intern_attribute(TAGS[g.below(TAGS.len())]);
                let dup = doc.children(parent).iter().any(
                    |&c| matches!(doc.data(c), NodeData::Literal { label: l, .. } if *l == label),
                );
                if !dup {
                    doc.add_child(parent, NodeData::attribute(label, "v".repeat(g.below(12))));
                }
            }
            _ => {
                let len = 1 + g.below(40);
                let mut s = String::with_capacity(len);
                while s.len() < len {
                    s.push((b'a' + g.below(26) as u8) as char);
                }
                doc.add_child(parent, NodeData::text(s));
            }
        }
    }
    doc
}

/// Oracle-side mirror of the evaluator's step representation.
enum OTest {
    Name(String),
    Any,
    Text,
}

struct OStep {
    descendant: bool,
    test: OTest,
    position: Option<usize>,
}

/// Generates a random query as both its oracle steps and its rendered
/// path expression (the exact string handed to `PathQuery::parse`).
fn random_query(g: &mut Gen) -> (String, Vec<OStep>) {
    let nsteps = 1 + g.below(4);
    let mut path = String::new();
    let mut steps = Vec::new();
    for _ in 0..nsteps {
        let descendant = g.below(10) < 4;
        path.push('/');
        if descendant {
            path.push('/');
        }
        let test = match g.below(10) {
            0 => OTest::Any,
            1 => OTest::Text,
            // Mostly known tags; sometimes a name no document ever uses
            // (must resolve to an empty result, not an error).
            _ if g.below(8) == 0 => OTest::Name("zz".to_string()),
            _ => OTest::Name(TAGS[g.below(TAGS.len())].to_string()),
        };
        match &test {
            OTest::Any => path.push('*'),
            OTest::Text => path.push_str("text()"),
            OTest::Name(n) => path.push_str(n),
        }
        let position = (g.below(4) == 0).then(|| 1 + g.below(4));
        if let Some(p) = position {
            path.push_str(&format!("[{p}]"));
        }
        steps.push(OStep {
            descendant,
            test,
            position,
        });
    }
    (path, steps)
}

fn omatches(doc: &Document, syms: &SymbolTable, n: NodeIdx, t: &OTest) -> bool {
    match doc.data(n) {
        NodeData::Element(label) => match t {
            OTest::Any => true,
            OTest::Name(name) => syms.name(*label) == name.as_str(),
            OTest::Text => false,
        },
        NodeData::Literal { label, .. } => matches!(t, OTest::Text) && *label == LABEL_TEXT,
    }
}

fn oracle_children(
    doc: &Document,
    syms: &SymbolTable,
    ctx: NodeIdx,
    step: &OStep,
    out: &mut Vec<NodeIdx>,
) {
    let mut seen = 0usize;
    for &c in doc.children(ctx) {
        if omatches(doc, syms, c, &step.test) {
            seen += 1;
            match step.position {
                None => out.push(c),
                Some(p) if p == seen => {
                    out.push(c);
                    break;
                }
                Some(_) => {}
            }
        }
    }
}

fn oracle_descendants(
    doc: &Document,
    syms: &SymbolTable,
    ctx: NodeIdx,
    step: &OStep,
    out: &mut Vec<NodeIdx>,
) {
    let mut seen = 0usize;
    let mut stack = vec![ctx];
    let mut first = true;
    while let Some(p) = stack.pop() {
        let m = omatches(doc, syms, p, &step.test);
        if m && !(first && p == ctx && matches!(step.test, OTest::Text)) {
            seen += 1;
            match step.position {
                None => out.push(p),
                Some(n) if n == seen => {
                    out.push(p);
                    return;
                }
                Some(_) => {}
            }
        }
        first = false;
        for &k in doc.children(p).iter().rev() {
            stack.push(k);
        }
    }
}

/// The naive DOM oracle: same semantics as the repository evaluator,
/// over the in-memory document.
fn oracle_eval(doc: &Document, syms: &SymbolTable, steps: &[OStep]) -> Vec<NodeIdx> {
    let root = doc.root();
    let first = &steps[0];
    let mut current = Vec::new();
    if first.descendant {
        oracle_descendants(doc, syms, root, first, &mut current);
    } else if omatches(doc, syms, root, &first.test) && first.position.unwrap_or(1) == 1 {
        current.push(root);
    }
    for step in &steps[1..] {
        let mut next = Vec::new();
        for &ctx in &current {
            if step.descendant {
                oracle_descendants(doc, syms, ctx, step, &mut next);
            } else {
                oracle_children(doc, syms, ctx, step, &mut next);
            }
        }
        current = next;
    }
    current
}

fn repo(page_size: usize, syms: &SymbolTable) -> Repository {
    let r = Repository::create_in_memory(RepositoryOptions {
        page_size,
        ..RepositoryOptions::default()
    })
    .unwrap();
    *r.symbols_mut() = syms.clone();
    r
}

/// All logical node ids of a stored document in pre-order (binds every
/// node through the read-only `children` API).
fn collect_preorder_ids(r: &Repository, doc: DocId) -> Vec<NodeId> {
    let mut out = Vec::new();
    let mut stack = vec![r.root(doc).unwrap()];
    while let Some(n) = stack.pop() {
        out.push(n);
        for &c in r.children(doc, n).unwrap().iter().rev() {
            stack.push(c);
        }
    }
    out
}

#[test]
fn parallel_and_sequential_match_dom_oracle() {
    for case in 0..20u64 {
        let mut g = Gen::new(0x9E37_79B9 ^ case);
        let mut syms = SymbolTable::new();
        let doc = random_document(&mut g, &mut syms);
        let page_size = [512usize, 1024, 2048][g.below(3)];
        let queries: Vec<(String, Vec<OStep>)> = (0..8).map(|_| random_query(&mut g)).collect();

        let bulk = repo(page_size, &syms);
        bulk.put_document("d", &doc).unwrap();
        let per_node = repo(page_size, &syms);
        per_node.put_document_per_node("d", &doc).unwrap();

        let dom_pre: Vec<NodeIdx> = doc.pre_order().collect();
        let dom_pos: HashMap<NodeIdx, usize> =
            dom_pre.iter().enumerate().map(|(i, &n)| (n, i)).collect();

        for (load_path, r) in [("bulkload", &bulk), ("per-node", &per_node)] {
            let id = r.doc_id("d").unwrap();
            let repo_pre = collect_preorder_ids(r, id);
            assert_eq!(
                repo_pre.len(),
                dom_pre.len(),
                "case {case} [{load_path}]: stored node count diverges from the DOM"
            );
            let repo_pos: HashMap<NodeId, usize> =
                repo_pre.iter().enumerate().map(|(i, &n)| (n, i)).collect();

            for (path, osteps) in &queries {
                let q = PathQuery::parse(path).unwrap();
                let seq = r.query_parsed(id, &q).unwrap();
                // Threshold 1 defeats the sequential fallback so the
                // record work queue really runs; 1 thread exercises the
                // degenerate pool.
                for threads in [1usize, 2, 4] {
                    let par = r
                        .query_parallel(
                            id,
                            &q,
                            &ParallelQueryOptions {
                                threads,
                                parallel_record_threshold: 1,
                                ..Default::default()
                            },
                        )
                        .unwrap();
                    assert_eq!(
                        par, seq,
                        "case {case} [{load_path}] '{path}': parallel ({threads} threads) \
                         diverges from sequential"
                    );
                }
                let oracle = oracle_eval(&doc, &syms, osteps);
                let seq_pos: Vec<usize> = seq.iter().map(|n| repo_pos[n]).collect();
                let oracle_pos: Vec<usize> = oracle.iter().map(|n| dom_pos[n]).collect();
                assert_eq!(
                    seq_pos, oracle_pos,
                    "case {case} [{load_path}] '{path}': stored-tree evaluation \
                     diverges from the DOM oracle"
                );
            }
        }
    }
}

#[test]
fn fanout_matches_per_document_sequential_on_random_corpora() {
    for case in 0..6u64 {
        let mut g = Gen::new(0xFA40 ^ case);
        let mut syms = SymbolTable::new();
        let docs: Vec<Document> = (0..5).map(|_| random_document(&mut g, &mut syms)).collect();
        let r = repo(1024, &syms);
        let ids: Vec<DocId> = docs
            .iter()
            .enumerate()
            .map(|(i, d)| r.put_document(&format!("doc{i}"), d).unwrap())
            .collect();
        for _ in 0..4 {
            let (path, _) = random_query(&mut g);
            let q = PathQuery::parse(&path).unwrap();
            let seq: Vec<Vec<NodeId>> = ids
                .iter()
                .map(|&d| r.query_parsed(d, &q).unwrap())
                .collect();
            let par: Vec<Vec<NodeId>> = r
                .query_documents_opts(
                    &ids,
                    &q,
                    &ParallelQueryOptions {
                        threads: 4,
                        parallel_record_threshold: 16,
                        ..Default::default()
                    },
                )
                .into_iter()
                .map(|res| res.unwrap())
                .collect();
            assert_eq!(par, seq, "case {case} '{path}'");
        }
    }
}

const ALL_SHAPES: &[PlanShape] = &[
    PlanShape::SummaryOnly,
    PlanShape::SummarySeeded,
    PlanShape::IndexSeeded,
    PlanShape::ParallelScan,
    PlanShape::LazyWalk,
];

/// The plan-shape matrix: every shape the planner can emit is forced over
/// the generated document × query corpus and must return bit-identical
/// results to the DOM oracle — or refuse with `PlanUnsupported` when its
/// preconditions don't hold (never a wrong answer). The planner's freely
/// chosen plan must equal its forced equivalent, and every shape must be
/// exercised somewhere in the corpus.
#[test]
fn every_forced_plan_shape_matches_the_dom_oracle() {
    let mut exercised: HashSet<PlanShape> = HashSet::new();
    for case in 0..12u64 {
        let mut g = Gen::new(0x51A9 ^ case);
        let mut syms = SymbolTable::new();
        let doc = random_document(&mut g, &mut syms);
        let page_size = [512usize, 1024, 2048][g.below(3)];
        let queries: Vec<(String, Vec<OStep>)> = (0..10).map(|_| random_query(&mut g)).collect();

        let r = repo(page_size, &syms);
        let id = r.put_document("d", &doc).unwrap();
        // A current attached label index makes `IndexSeeded` reachable.
        let idx = Arc::new(Mutex::new(LabelIndex::create(&r).unwrap()));
        idx.lock().index_document(&r, "d").unwrap();
        r.attach_label_index(&idx);

        let dom_pre: Vec<NodeIdx> = doc.pre_order().collect();
        let dom_pos: HashMap<NodeIdx, usize> =
            dom_pre.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let repo_pre = collect_preorder_ids(&r, id);
        let repo_pos: HashMap<NodeId, usize> =
            repo_pre.iter().enumerate().map(|(i, &n)| (n, i)).collect();

        for (path, osteps) in &queries {
            let q = PathQuery::parse(path).unwrap();
            let oracle = oracle_eval(&doc, &syms, osteps);
            let oracle_pos: Vec<usize> = oracle.iter().map(|n| dom_pos[n]).collect();

            // The planner's own choice is the baseline.
            let (chosen_ids, chosen) = r
                .query_planned_parsed(id, &q, &PlannerOptions::default())
                .unwrap();
            let chosen_pos: Vec<usize> = chosen_ids.iter().map(|n| repo_pos[n]).collect();
            assert_eq!(
                chosen_pos, oracle_pos,
                "case {case} '{path}': chosen plan {:?} diverges from the DOM oracle",
                chosen.shape
            );
            let (chosen_count, chosen_count_explain) = r
                .count_planned("d", path, &PlannerOptions::default())
                .unwrap();
            assert_eq!(
                chosen_count,
                oracle.len() as u64,
                "case {case} '{path}': chosen count plan {:?} diverges from the oracle",
                chosen_count_explain.shape
            );

            for &shape in ALL_SHAPES {
                let forced = PlannerOptions {
                    force: Some(shape),
                    ..PlannerOptions::default()
                };
                match r.query_planned_parsed(id, &q, &forced) {
                    Ok((ids, explain)) => {
                        assert_eq!(explain.shape, shape, "case {case} '{path}'");
                        assert!(explain.forced, "case {case} '{path}'");
                        let pos: Vec<usize> = ids.iter().map(|n| repo_pos[n]).collect();
                        assert_eq!(
                            pos, oracle_pos,
                            "case {case} '{path}' forced {shape:?}: diverges from the DOM oracle"
                        );
                        // The chosen plan equals its forced equivalent.
                        if chosen.shape == shape {
                            assert_eq!(
                                ids, chosen_ids,
                                "case {case} '{path}': chosen {shape:?} differs from forced"
                            );
                        }
                        exercised.insert(shape);
                    }
                    Err(NatixError::PlanUnsupported(_)) => {
                        // The shape's preconditions do not hold for this
                        // query — the planner must not have chosen it.
                        assert_ne!(
                            chosen.shape, shape,
                            "case {case} '{path}': planner chose a shape forcing refuses"
                        );
                    }
                    Err(e) => panic!("case {case} '{path}' forced {shape:?}: {e}"),
                }
                match r.count_planned("d", path, &forced) {
                    Ok((n, explain)) => {
                        assert_eq!(explain.shape, shape, "case {case} '{path}'");
                        assert_eq!(
                            n,
                            oracle.len() as u64,
                            "case {case} '{path}' forced {shape:?}: count diverges"
                        );
                        exercised.insert(shape);
                    }
                    Err(NatixError::PlanUnsupported(_)) => {}
                    Err(e) => panic!("case {case} '{path}' forced {shape:?} (count): {e}"),
                }
            }
        }
    }
    for &shape in ALL_SHAPES {
        assert!(
            exercised.contains(&shape),
            "{shape:?} was never exercised by the corpus"
        );
    }
}

/// Satellite pin: a query whose name test is not even in the symbol
/// alphabet is provably empty and must be answered from the planner's
/// short circuit with **zero page reads** — pinned by the buffer-miss
/// counter after clearing the pool.
#[test]
fn unknown_label_short_circuits_with_zero_page_reads() {
    let mut g = Gen::new(0xD0C5);
    let mut syms = SymbolTable::new();
    let doc = random_document(&mut g, &mut syms);
    let r = repo(512, &syms);
    r.put_document("d", &doc).unwrap();

    r.clear_buffer().unwrap();
    let before = r.io_stats().snapshot();
    let (ids, explain) = r
        .query_planned("d", "/zz/a", &PlannerOptions::default())
        .unwrap();
    assert!(ids.is_empty());
    assert_eq!(explain.shape, PlanShape::SummaryOnly);
    assert_eq!(explain.estimated_matches, Some(0));
    assert_eq!(r.query_count("d", "//zz").unwrap(), 0);
    assert!(!r.query_exists("d", "/a/zz/text()").unwrap());
    let misses = r.io_stats().snapshot().since(&before).buffer_misses;
    assert_eq!(
        misses, 0,
        "unknown-label queries must not touch a single page"
    );
}

/// Scan-cache matrix: the parallel evaluator must be bit-identical to
/// sequential evaluation under every eviction policy × prefetch-window
/// combination, on a pool so small (8 frames) that scans evict
/// continuously and prefetched frames are reclaimed while still queued.
/// Prefetch and scan-priority admission are advisory — they must never
/// change results, only latency.
#[test]
fn eviction_policy_and_prefetch_window_never_change_results() {
    use natix_storage::buffer::EvictionPolicy;

    const POLICIES: &[EvictionPolicy] = &[
        EvictionPolicy::Lru,
        EvictionPolicy::Clock,
        EvictionPolicy::ScanResistant,
    ];
    for case in 0..6u64 {
        let mut g = Gen::new(0x5CA9_CAC4E ^ case);
        let mut syms = SymbolTable::new();
        let doc = random_document(&mut g, &mut syms);
        let page_size = [512usize, 1024][g.below(2)];
        let queries: Vec<String> = (0..6).map(|_| random_query(&mut g).0).collect();

        for &policy in POLICIES {
            let r = Repository::create_in_memory(RepositoryOptions {
                page_size,
                // 8 frames: descendant scans turn the pool over many
                // times per query, so eviction decisions really differ
                // between the policies.
                buffer_bytes: 8 * page_size,
                eviction: policy,
                ..RepositoryOptions::default()
            })
            .unwrap();
            *r.symbols_mut() = syms.clone();
            let id = r.put_document("d", &doc).unwrap();

            for path in &queries {
                let q = PathQuery::parse(path).unwrap();
                let seq = r.query_parsed(id, &q).unwrap();
                for prefetch_window in [0usize, 4] {
                    r.clear_buffer().unwrap();
                    let par = r
                        .query_parallel(
                            id,
                            &q,
                            &ParallelQueryOptions {
                                threads: 4,
                                parallel_record_threshold: 1,
                                prefetch_window,
                            },
                        )
                        .unwrap();
                    assert_eq!(
                        par, seq,
                        "case {case} '{path}' [{policy:?}, window {prefetch_window}]: \
                         parallel diverges from sequential"
                    );
                }
            }
        }
    }
}

#[test]
fn subtree_record_counts_cover_the_whole_document() {
    // The record-granular enumeration reaches every record exactly once:
    // the count from the document root equals the physical record count
    // reported by the validator.
    for case in 0..8u64 {
        let mut g = Gen::new(0x5EC0 ^ case);
        let mut syms = SymbolTable::new();
        let doc = random_document(&mut g, &mut syms);
        let r = repo(512, &syms);
        let id = r.put_document("d", &doc).unwrap();
        let stats = r.physical_stats("d").unwrap();
        let counted = r.subtree_record_count(id, r.root(id).unwrap()).unwrap();
        assert_eq!(
            counted, stats.records,
            "case {case}: record enumeration missed or repeated records"
        );
    }
}
