use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => {
            let root = match args.get(1) {
                Some(p) => PathBuf::from(p),
                None => match std::env::current_dir() {
                    Ok(d) => d,
                    Err(e) => {
                        eprintln!("natix-lint: cannot determine working directory: {e}");
                        return ExitCode::FAILURE;
                    }
                },
            };
            let violations = natix_lint::check_workspace(&root);
            for v in &violations {
                println!("{v}");
            }
            if violations.is_empty() {
                println!("natix-lint: clean");
                ExitCode::SUCCESS
            } else {
                println!("natix-lint: {} violation(s)", violations.len());
                ExitCode::FAILURE
            }
        }
        _ => {
            eprintln!("usage: natix-lint check [workspace-root]");
            ExitCode::FAILURE
        }
    }
}
