//! `natix-lint` — repo-specific static invariants the compiler cannot
//! express and clippy does not know about. Run as
//! `cargo run -p natix-lint -- check` (CI does, and fails on violations).
//!
//! The scanner is hand-rolled: the build environment is offline, so no
//! `syn`. Sources are sanitised (comments and string/char literals blanked,
//! line structure preserved) and then checked line- and item-wise with
//! brace/paren tracking. That is enough for the five rules below, all of
//! which key on tokens that survive sanitisation:
//!
//! 1. **durable-gate** — every `pub fn` write API in
//!    `crates/core/src/document.rs` / `repository.rs` that reaches the
//!    version store's publish hook (`begin_write` /
//!    `defer_until_publish`, directly or through same-file helpers) must
//!    also reach `durable_gate`. Committed-but-not-durable write paths
//!    were PR 6's whole point; this keeps the next API honest.
//! 2. **guard-discipline** — no `let _ = <guard-producing call>`: binding
//!    a `ReadPin`, `WriteOp`, page pin, or lock guard to `_` drops it on
//!    the same line, which compiles and then silently serialises nothing.
//! 3. **storage-panic** — no `.unwrap()` / `.expect(` in
//!    `crates/storage` non-test code. A panic in the storage layer while
//!    holding pool or allocator state poisons the engine; storage code
//!    returns `Result`.
//! 4. **shim-bypass** — no `std::sync::Mutex` / `RwLock` / `Condvar`
//!    outside `crates/shims`: locks built behind the shim's back are
//!    invisible to the lockdep hierarchy checker. (`Arc`, atomics and
//!    `OnceLock` are fine.)
//! 5. **prefetch-lock-hold** — upper-layer code must not issue a buffer
//!    prefetch or batched read (`prefetch` / `prefetch_pages` /
//!    `read_pages`) while a mutex guard is lexically live; those calls
//!    enter a buffer I/O region and the held lock would stall every
//!    contender for a device round-trip.
//! 6. **unranked-lock** — no bare `Mutex::new` / `RwLock::new` in
//!    `crates/{core,storage,tree}` non-test code: a long-lived lock
//!    built without `with_rank` is invisible to the lockdep hierarchy
//!    checker *and* unnamed in model-checker schedules. Genuinely
//!    short-lived or deliberately unranked locks carry an in-file
//!    `// natix-lint: allow(unranked-lock): <reason>` exemption on the
//!    same or preceding line.
//!
//! Rule 3 covers `crates/storage` and `crates/tree`: both layers sit
//! under the engine's recovery and latching protocols, where a panic
//! while holding pool/allocator/version-store state poisons the engine.

use std::fmt;
use std::path::{Path, PathBuf};

/// A single rule violation, keyed by repo-relative path and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub file: PathBuf,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

// ---------------------------------------------------------------------------
// Source sanitisation
// ---------------------------------------------------------------------------

/// Blank out comments and string/char literal *contents* with spaces,
/// preserving byte offsets and line structure, so later token scans never
/// match inside a literal or a doc comment. Handles nested block comments,
/// escape sequences, raw strings up to `r###"`, byte strings, and the
/// char-literal-vs-lifetime ambiguity (heuristically: a `'` opens a char
/// literal only if a closing `'` follows within a few bytes).
pub fn sanitize(source: &str) -> String {
    let b = source.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(b.len());
    let mut i = 0;
    let blank = |out: &mut Vec<u8>, b: &[u8], from: usize, to: usize| {
        for &c in &b[from..to] {
            out.push(if c == b'\n' { b'\n' } else { b' ' });
        }
    };
    while i < b.len() {
        let c = b[i];
        // Line comment.
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            let end = source[i..].find('\n').map(|p| i + p).unwrap_or(b.len());
            blank(&mut out, b, i, end);
            i = end;
            continue;
        }
        // Block comment (nested).
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            let mut depth = 1;
            let mut j = i + 2;
            while j < b.len() && depth > 0 {
                if b[j] == b'/' && j + 1 < b.len() && b[j + 1] == b'*' {
                    depth += 1;
                    j += 2;
                } else if b[j] == b'*' && j + 1 < b.len() && b[j + 1] == b'/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            blank(&mut out, b, i, j);
            i = j;
            continue;
        }
        // Raw (byte) string: r"..."  r#"..."#  br##"..."## etc.
        if c == b'r' || (c == b'b' && i + 1 < b.len() && b[i + 1] == b'r') {
            let r_at = if c == b'r' { i } else { i + 1 };
            // Must not be part of a longer identifier (e.g. `for r in ..`
            // is fine: we only trigger when `#` or `"` follows the `r`).
            let prev_ident = i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_');
            let mut j = r_at + 1;
            let mut hashes = 0;
            while j < b.len() && b[j] == b'#' {
                hashes += 1;
                j += 1;
            }
            if !prev_ident && j < b.len() && b[j] == b'"' {
                let closer: Vec<u8> = std::iter::once(b'"')
                    .chain(std::iter::repeat_n(b'#', hashes))
                    .collect();
                let body_start = j + 1;
                let end = b[body_start..]
                    .windows(closer.len())
                    .position(|w| w == closer.as_slice())
                    .map(|p| body_start + p + closer.len())
                    .unwrap_or(b.len());
                out.extend_from_slice(&b[i..body_start]);
                blank(&mut out, b, body_start, end);
                i = end;
                continue;
            }
        }
        // Plain (byte) string.
        if c == b'"' {
            let mut j = i + 1;
            while j < b.len() {
                if b[j] == b'\\' {
                    j += 2;
                } else if b[j] == b'"' {
                    j += 1;
                    break;
                } else {
                    j += 1;
                }
            }
            out.push(b'"');
            blank(&mut out, b, i + 1, j.min(b.len()));
            i = j;
            continue;
        }
        // Char literal vs lifetime.
        if c == b'\'' {
            let is_char = if i + 1 < b.len() && b[i + 1] == b'\\' {
                true
            } else {
                // 'x' closes within 5 bytes (covers multi-byte chars).
                b[i + 1..b.len().min(i + 6)].contains(&b'\'')
                    && !(i + 1 < b.len() && b[i + 1] == b'\'')
            };
            if is_char {
                let mut j = i + 1;
                if j < b.len() && b[j] == b'\\' {
                    j += 2;
                }
                while j < b.len() && b[j] != b'\'' {
                    j += 1;
                }
                j = (j + 1).min(b.len());
                out.push(b'\'');
                blank(&mut out, b, i + 1, j);
                i = j;
                continue;
            }
        }
        out.push(c);
        i += 1;
    }
    String::from_utf8(out).expect("sanitiser only substitutes ASCII spaces")
}

// ---------------------------------------------------------------------------
// `#[cfg(test)]` masking
// ---------------------------------------------------------------------------

/// Per-line flags: `true` when the line lies inside a `#[cfg(test)] mod`
/// item. Operates on sanitised source.
pub fn test_mask(clean: &str) -> Vec<bool> {
    let line_count = clean.lines().count();
    let mut mask = vec![false; line_count];
    let b = clean.as_bytes();
    let mut search_from = 0;
    while let Some(found) = clean[search_from..].find("#[cfg(test)]") {
        let attr_at = search_from + found;
        let mut j = attr_at + "#[cfg(test)]".len();
        // Skip whitespace and further attributes.
        loop {
            while j < b.len() && (b[j] as char).is_whitespace() {
                j += 1;
            }
            if j < b.len() && b[j] == b'#' {
                while j < b.len() && b[j] != b']' {
                    j += 1;
                }
                j += 1;
            } else {
                break;
            }
        }
        let rest = &clean[j..];
        let is_mod = rest.starts_with("mod ")
            || rest.starts_with("pub mod ")
            || rest.starts_with("pub(crate) mod ");
        if is_mod {
            if let Some(open_rel) = rest.find('{') {
                let open = j + open_rel;
                let close = match_brace(b, open);
                let start_line = clean[..attr_at].bytes().filter(|&c| c == b'\n').count();
                let end_line = clean[..close.min(b.len())]
                    .bytes()
                    .filter(|&c| c == b'\n')
                    .count()
                    + 1;
                for line_flag in mask
                    .iter_mut()
                    .take(end_line.min(line_count))
                    .skip(start_line)
                {
                    *line_flag = true;
                }
                search_from = close.min(b.len());
                continue;
            }
        }
        search_from = attr_at + 1;
    }
    mask
}

/// Index one past the brace matching `b[open]` (which must be `{`).
fn match_brace(b: &[u8], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < b.len() {
        match b[j] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    b.len()
}

fn line_of(clean: &str, byte: usize) -> usize {
    clean[..byte.min(clean.len())]
        .bytes()
        .filter(|&c| c == b'\n')
        .count()
        + 1
}

fn is_ident(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Does `hay` contain `word` as a whole token (not part of a longer
/// identifier)?
fn contains_word(hay: &str, word: &str) -> bool {
    let b = hay.as_bytes();
    let mut from = 0;
    while let Some(p) = hay[from..].find(word) {
        let at = from + p;
        let before_ok = at == 0 || !is_ident(b[at - 1]);
        let end = at + word.len();
        let after_ok = end >= b.len() || !is_ident(b[end]);
        if before_ok && after_ok {
            return true;
        }
        from = at + 1;
    }
    false
}

// ---------------------------------------------------------------------------
// Rule 1: durable-gate coverage in document.rs / repository.rs
// ---------------------------------------------------------------------------

struct FnItem {
    name: String,
    is_pub: bool,
    line: usize,
    /// Line of the body's opening brace (multi-line signatures put it
    /// well below `line`).
    body_line: usize,
    body: String,
    in_test: bool,
}

fn collect_fns(clean: &str, mask: &[bool]) -> Vec<FnItem> {
    let b = clean.as_bytes();
    let mut items = Vec::new();
    let mut from = 0;
    while let Some(p) = clean[from..].find("fn ") {
        let at = from + p;
        from = at + 3;
        // Must be the `fn` keyword, not the tail of an identifier.
        if at > 0 && is_ident(b[at - 1]) {
            continue;
        }
        let name_start = at + 3;
        let mut name_end = name_start;
        while name_end < b.len() && is_ident(b[name_end]) {
            name_end += 1;
        }
        if name_end == name_start {
            continue;
        }
        let name = clean[name_start..name_end].to_string();
        // `pub` / `pub(crate)` etc. on the same declaration line, before `fn`.
        let decl_line_start = clean[..at].rfind('\n').map(|x| x + 1).unwrap_or(0);
        let is_pub = clean[decl_line_start..at].trim_start().starts_with("pub");
        // Body: first `{` at paren/bracket depth 0 after the signature.
        let mut j = name_end;
        let mut depth = 0i32;
        let open = loop {
            if j >= b.len() {
                break None;
            }
            match b[j] {
                b'(' | b'[' => depth += 1,
                b')' | b']' => depth -= 1,
                b'{' if depth == 0 => break Some(j),
                b';' if depth == 0 => break None, // trait method, no body
                _ => {}
            }
            j += 1;
        };
        let Some(open) = open else { continue };
        let close = match_brace(b, open);
        let line = line_of(clean, at);
        let in_test = mask.get(line - 1).copied().unwrap_or(false);
        items.push(FnItem {
            name,
            is_pub,
            line,
            body_line: line_of(clean, open),
            body: clean[open..close].to_string(),
            in_test,
        });
    }
    items
}

/// Check durable-gate coverage over the fns of one or more files belonging
/// to the same `impl` surface. `files` pairs a repo-relative path with its
/// *raw* source.
pub fn rule_durable_gate(files: &[(&Path, &str)]) -> Vec<Violation> {
    let mut all: Vec<(PathBuf, FnItem)> = Vec::new();
    for (path, source) in files {
        let clean = sanitize(source);
        let mask = test_mask(&clean);
        for f in collect_fns(&clean, &mask) {
            all.push((path.to_path_buf(), f));
        }
    }
    let publishes_directly = |f: &FnItem| {
        contains_word(&f.body, "begin_write") || contains_word(&f.body, "defer_until_publish")
    };
    let gates_directly = |f: &FnItem| contains_word(&f.body, "durable_gate");

    // Transitive closure over the same-surface call graph: fn A "calls"
    // fn B if B's name appears as a call token in A's body.
    let closure = |direct: &dyn Fn(&FnItem) -> bool| -> Vec<bool> {
        let mut flag: Vec<bool> = all.iter().map(|(_, f)| direct(f)).collect();
        loop {
            let mut changed = false;
            for i in 0..all.len() {
                if flag[i] {
                    continue;
                }
                for j in 0..all.len() {
                    if flag[j]
                        && contains_word(&all[i].1.body, &all[j].1.name)
                        && all[i].1.body.contains(&format!("{}(", all[j].1.name))
                    {
                        flag[i] = true;
                        changed = true;
                        break;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        flag
    };
    let publishes = closure(&publishes_directly);
    let gates = closure(&gates_directly);

    let mut out = Vec::new();
    for (i, (path, f)) in all.iter().enumerate() {
        if f.is_pub && !f.in_test && publishes[i] && !gates[i] && f.name != "durable_gate" {
            out.push(Violation {
                file: path.clone(),
                line: f.line,
                rule: "durable-gate",
                message: format!(
                    "pub fn `{}` reaches the version store's publish hook but never \
                     calls `durable_gate`; committed work may be lost on crash",
                    f.name
                ),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule 2: `let _ =` must not bind RAII guards
// ---------------------------------------------------------------------------

/// Method / function names whose return value is an RAII guard that must
/// outlive its use: lock guards, page pins, version-store pins and ops.
const GUARD_CALLS: &[&str] = &[
    "lock",
    "try_lock",
    "read",
    "write",
    "try_read",
    "try_write",
    "pin",
    "pin_new",
    "begin_read",
    "begin_write",
    "adopt_read",
    "wait",
    "wait_timeout",
    "io_region",
];

/// The name of the last *top-level* call in an expression (`a.b(c.d()).e()`
/// yields `e`; nested calls inside argument lists are ignored), peeling
/// trailing `unwrap`/`expect`.
fn last_toplevel_call(expr: &str) -> Option<String> {
    let b = expr.as_bytes();
    let mut depth = 0i32;
    let mut calls: Vec<String> = Vec::new();
    for (j, &c) in b.iter().enumerate() {
        match c {
            b'(' | b'[' => {
                if depth == 0 && c == b'(' {
                    let mut k = j;
                    while k > 0 && (is_ident(b[k - 1]) || b[k - 1] == b'!') {
                        k -= 1;
                    }
                    if k < j {
                        calls.push(expr[k..j].trim_end_matches('!').to_string());
                    }
                }
                depth += 1;
            }
            b')' | b']' => depth -= 1,
            _ => {}
        }
    }
    while matches!(
        calls.last().map(String::as_str),
        Some("unwrap") | Some("expect")
    ) {
        calls.pop();
    }
    calls.pop()
}

pub fn rule_guard_discipline(path: &Path, source: &str) -> Vec<Violation> {
    let clean = sanitize(source);
    let b = clean.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = clean[from..].find("let _") {
        let at = from + p;
        from = at + 5;
        if at > 0 && is_ident(b[at - 1]) {
            continue;
        }
        // Exactly `_`, not `_named`.
        let mut j = at + 5;
        if j < b.len() && is_ident(b[j]) {
            continue;
        }
        while j < b.len() && (b[j] as char).is_whitespace() {
            j += 1;
        }
        if j >= b.len() || b[j] != b'=' || (j + 1 < b.len() && b[j + 1] == b'=') {
            continue;
        }
        // Statement RHS up to `;` at depth 0.
        let rhs_start = j + 1;
        let mut depth = 0i32;
        let mut k = rhs_start;
        while k < b.len() {
            match b[k] {
                b'(' | b'[' | b'{' => depth += 1,
                b')' | b']' | b'}' => depth -= 1,
                b';' if depth == 0 => break,
                _ => {}
            }
            k += 1;
        }
        let rhs = &clean[rhs_start..k.min(clean.len())];
        if let Some(call) = last_toplevel_call(rhs) {
            if GUARD_CALLS.contains(&call.as_str()) {
                out.push(Violation {
                    file: path.to_path_buf(),
                    line: line_of(&clean, at),
                    rule: "guard-discipline",
                    message: format!(
                        "`let _ = ...{call}(...)` drops the returned guard immediately; \
                         bind it to a named variable so it lives to the end of scope"
                    ),
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule 3: no unwrap/expect in crates/storage or crates/tree non-test code
// ---------------------------------------------------------------------------

pub fn rule_storage_panic(path: &Path, source: &str) -> Vec<Violation> {
    let clean = sanitize(source);
    let mask = test_mask(&clean);
    let mut out = Vec::new();
    for (idx, line) in clean.lines().enumerate() {
        if mask.get(idx).copied().unwrap_or(false) {
            continue;
        }
        for needle in [".unwrap()", ".expect("] {
            if line.contains(needle) {
                out.push(Violation {
                    file: path.to_path_buf(),
                    line: idx + 1,
                    rule: "storage-panic",
                    message: format!(
                        "`{needle}..` in storage/tree non-test code; a panic here can \
                         poison pool/allocator/version-store state — return an error \
                         instead"
                    ),
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule 6: long-lived locks in engine crates must be ranked
// ---------------------------------------------------------------------------

/// Exemption marker for rule 6, written in a comment on the same line as
/// the bare constructor or the line above it, followed by a reason:
/// `// natix-lint: allow(unranked-lock): per-frame latch, see rank docs`.
pub const UNRANKED_LOCK_ALLOW: &str = "natix-lint: allow(unranked-lock)";

/// No bare `Mutex::new` / `RwLock::new` in engine non-test code: an
/// unranked lock is invisible to the lockdep hierarchy checker and
/// unnamed in model-checker schedules, so every long-lived lock goes
/// through `with_rank`. The allow marker (see [`UNRANKED_LOCK_ALLOW`])
/// exempts deliberate cases in-file, keeping the exemption next to the
/// lock it justifies.
pub fn rule_unranked_lock(path: &Path, source: &str) -> Vec<Violation> {
    let clean = sanitize(source);
    let mask = test_mask(&clean);
    // The marker lives in a comment, which sanitisation blanks — read it
    // from the raw source. A marker covers its own line and the next.
    let raw_lines: Vec<&str> = source.lines().collect();
    let allowed = |idx: usize| {
        raw_lines
            .get(idx)
            .is_some_and(|l| l.contains(UNRANKED_LOCK_ALLOW))
            || (idx > 0
                && raw_lines
                    .get(idx - 1)
                    .is_some_and(|l| l.contains(UNRANKED_LOCK_ALLOW)))
    };
    let mut out = Vec::new();
    for (idx, line) in clean.lines().enumerate() {
        if mask.get(idx).copied().unwrap_or(false) || allowed(idx) {
            continue;
        }
        for ty in ["Mutex", "RwLock"] {
            let needle = format!("{ty}::new(");
            let Some(p) = line.find(&needle) else {
                continue;
            };
            // A path-qualified constructor that is not the shim's is some
            // other type's business (`std::sync::Mutex::new` is rule 4's).
            let prefix = &line[..p];
            if prefix.ends_with("::") && !prefix.ends_with("parking_lot::") {
                continue;
            }
            out.push(Violation {
                file: path.to_path_buf(),
                line: idx + 1,
                rule: "unranked-lock",
                message: format!(
                    "bare `{ty}::new(..)` builds a lock with no rank — invisible to the \
                     lockdep hierarchy and unnamed in model schedules; use \
                     `{ty}::with_rank(&rank::..., ..)`, or justify with \
                     `// {UNRANKED_LOCK_ALLOW}: <reason>`"
                ),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule 4: no std::sync lock primitives outside the shim
// ---------------------------------------------------------------------------

pub fn rule_shim_bypass(path: &Path, source: &str) -> Vec<Violation> {
    let clean = sanitize(source);
    let mask = test_mask(&clean);
    let mut out = Vec::new();
    for (idx, line) in clean.lines().enumerate() {
        if mask.get(idx).copied().unwrap_or(false) {
            continue;
        }
        let direct = [
            "std::sync::Mutex",
            "std::sync::RwLock",
            "std::sync::Condvar",
        ]
        .iter()
        .any(|n| line.contains(n));
        let via_use = line.trim_start().starts_with("use std::sync::")
            && ["Mutex", "RwLock", "Condvar"]
                .iter()
                .any(|n| contains_word(line, n));
        if direct || via_use {
            out.push(Violation {
                file: path.to_path_buf(),
                line: idx + 1,
                rule: "shim-bypass",
                message: "std::sync lock primitive outside the parking_lot shim; such \
                          locks bypass the lockdep hierarchy checker — use the shim's \
                          Mutex/RwLock/Condvar (ranked where long-lived)"
                    .to_string(),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule 5: no lock held across buffer prefetch / batched reads
// ---------------------------------------------------------------------------

/// Call tokens that enter a buffer-pool I/O region: issuing one while a
/// ranked (non-io-tolerant) lock is held is a held-across-I/O bug that
/// lockdep would catch at runtime — this rule catches the lexical shape
/// statically, before the path is ever exercised.
const PREFETCH_IO_CALLS: &[&str] = &["prefetch", "prefetch_pages", "read_pages"];

/// Guard producers whose result is a mutex guard in the upper layers.
/// RwLock and page-latch guards are left to the runtime `io_region`
/// check: their receivers are io-tolerant storage-band locks far more
/// often than not, and flagging them here would drown the signal.
const LOCK_GUARD_CALLS: &[&str] = &["lock", "try_lock"];

/// Scan one statement for a prefetch-band I/O call.
fn stmt_enters_io(stmt: &str) -> Option<&'static str> {
    PREFETCH_IO_CALLS
        .iter()
        .find(|c| contains_word(stmt, c) && stmt.contains(&format!("{c}(")))
        .copied()
}

/// Upper-layer callers of `prefetch` / `prefetch_pages` / `read_pages`
/// must not hold a mutex guard across the call: the pattern is "snapshot
/// under the lock, drop the guard (explicitly or by closing its block),
/// then issue the batched read". Tracked lexically per function body:
/// `let g = ....lock();` registers a live guard at the current brace
/// depth; `drop(g)` or leaving the guard's block retires it.
pub fn rule_prefetch_lock_hold(path: &Path, source: &str) -> Vec<Violation> {
    let clean = sanitize(source);
    let mask = test_mask(&clean);
    let mut out = Vec::new();
    for f in collect_fns(&clean, &mask) {
        if f.in_test {
            continue;
        }
        let b = f.body.as_bytes();
        let mut guards: Vec<(String, i32)> = Vec::new();
        let mut depth = 0i32;
        let mut stmt_start = 0usize;
        let mut j = 0;
        while j < b.len() {
            match b[j] {
                b'{' => {
                    depth += 1;
                    stmt_start = j + 1;
                }
                b'}' => {
                    depth -= 1;
                    guards.retain(|g| g.1 <= depth);
                    stmt_start = j + 1;
                }
                b';' => {
                    let stmt = &f.body[stmt_start..j];
                    if let Some(call) = stmt_enters_io(stmt) {
                        if let Some((name, _)) = guards.first() {
                            let call_at = stmt_start + stmt.find(&format!("{call}(")).unwrap_or(0);
                            out.push(Violation {
                                file: path.to_path_buf(),
                                line: f.body_line
                                    + f.body[..call_at].bytes().filter(|&c| c == b'\n').count(),
                                rule: "prefetch-lock-hold",
                                message: format!(
                                    "`{call}(..)` issued while lock guard `{name}` is live; \
                                     batched reads are an I/O region — snapshot under the \
                                     lock, drop the guard, then prefetch"
                                ),
                            });
                        }
                    }
                    let t = stmt.trim_start();
                    if let Some(rest) = t.strip_prefix("let ") {
                        let rest = rest.trim_start();
                        let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
                        let name: String = rest
                            .bytes()
                            .take_while(|&c| is_ident(c))
                            .map(char::from)
                            .collect();
                        if !name.is_empty() && name != "_" {
                            if let Some(eq) = stmt.find('=') {
                                if let Some(call) = last_toplevel_call(&stmt[eq + 1..]) {
                                    if LOCK_GUARD_CALLS.contains(&call.as_str()) {
                                        guards.push((name, depth));
                                    }
                                }
                            }
                        }
                    } else if t.starts_with("drop(") || t.starts_with("drop (") {
                        let inner: String = t[t.find('(').unwrap_or(0) + 1..]
                            .trim_start()
                            .bytes()
                            .take_while(|&c| is_ident(c))
                            .map(char::from)
                            .collect();
                        guards.retain(|g| g.0 != inner);
                    }
                    stmt_start = j + 1;
                }
                _ => {}
            }
            j += 1;
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Workspace driver
// ---------------------------------------------------------------------------

fn is_storage_src(rel: &Path) -> bool {
    rel.starts_with("crates/storage/src")
}

/// Layers under the panic audit (rule 3): storage since PR 7, tree since
/// PR 10 — both run under the engine's recovery and latching protocols.
fn is_panic_audited_src(rel: &Path) -> bool {
    is_storage_src(rel) || rel.starts_with("crates/tree/src")
}

/// Crates whose locks participate in the rank hierarchy (rule 6).
fn is_ranked_lock_src(rel: &Path) -> bool {
    rel.starts_with("crates/core/src")
        || rel.starts_with("crates/storage/src")
        || rel.starts_with("crates/tree/src")
}

fn in_shim(rel: &Path) -> bool {
    rel.components()
        .any(|c| c.as_os_str().to_str() == Some("shims"))
}

fn is_test_tree(rel: &Path) -> bool {
    rel.components().any(|c| {
        matches!(
            c.as_os_str().to_str(),
            Some("tests") | Some("benches") | Some("examples") | Some("fixtures")
        )
    })
}

/// Apply every applicable rule to one file. `rel` is the repo-relative
/// path; dispatch is purely path-based so fixtures can impersonate any
/// location.
pub fn check_file(rel: &Path, source: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    if in_shim(rel) {
        return out;
    }
    out.extend(rule_guard_discipline(rel, source));
    if is_panic_audited_src(rel) {
        out.extend(rule_storage_panic(rel, source));
    }
    if !is_test_tree(rel) && is_ranked_lock_src(rel) {
        out.extend(rule_unranked_lock(rel, source));
    }
    if !is_test_tree(rel) {
        out.extend(rule_shim_bypass(rel, source));
        // Storage-band locks are io-tolerant by design (the runtime
        // io_region check exempts them); the static rule audits the
        // upper layers, where every lock is a scheduling lock.
        if !is_storage_src(rel) {
            out.extend(rule_prefetch_lock_hold(rel, source));
        }
    }
    out
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" || name == "fixtures" {
                continue;
            }
            walk(&path, files);
        } else if name.ends_with(".rs") {
            files.push(path);
        }
    }
}

/// Scan the whole workspace rooted at `root`. Returns all violations,
/// sorted by path and line.
pub fn check_workspace(root: &Path) -> Vec<Violation> {
    let mut files = Vec::new();
    for top in ["src", "crates", "examples"] {
        walk(&root.join(top), &mut files);
    }
    files.sort();

    let mut out = Vec::new();
    let mut gate_files: Vec<(PathBuf, String)> = Vec::new();
    for path in &files {
        let Ok(source) = std::fs::read_to_string(path) else {
            continue;
        };
        let rel = path.strip_prefix(root).unwrap_or(path).to_path_buf();
        if rel == Path::new("crates/core/src/document.rs")
            || rel == Path::new("crates/core/src/repository.rs")
        {
            gate_files.push((rel.clone(), source.clone()));
        }
        out.extend(check_file(&rel, &source));
    }
    let borrowed: Vec<(&Path, &str)> = gate_files
        .iter()
        .map(|(p, s)| (p.as_path(), s.as_str()))
        .collect();
    out.extend(rule_durable_gate(&borrowed));
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitizer_blanks_comments_and_strings() {
        let src = "let x = \"a.unwrap()\"; // .expect(\nlet c = 'y'; /* std::sync::Mutex */\n";
        let clean = sanitize(src);
        assert!(!clean.contains("unwrap"));
        assert!(!clean.contains("expect"));
        assert!(!clean.contains("Mutex"));
        assert_eq!(clean.lines().count(), src.lines().count());
    }

    #[test]
    fn sanitizer_handles_raw_strings_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let r = r#\"lock() \"inner\" \"#; }";
        let clean = sanitize(src);
        assert!(!clean.contains("lock()"));
        assert!(clean.contains("fn f<'a>"));
    }

    #[test]
    fn test_mask_covers_cfg_test_mod() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let clean = sanitize(src);
        let mask = test_mask(&clean);
        assert!(!mask[0]);
        assert!(mask[2]);
        assert!(mask[3]);
        assert!(!mask[5]);
    }

    #[test]
    fn last_toplevel_call_ignores_nested_args() {
        assert_eq!(
            last_toplevel_call("writeln!(s, \"{}\", m.lock())").as_deref(),
            Some("writeln")
        );
        assert_eq!(
            last_toplevel_call("results[i].lock()").as_deref(),
            Some("lock")
        );
        assert_eq!(
            last_toplevel_call("m.try_lock().unwrap()").as_deref(),
            Some("try_lock")
        );
        assert_eq!(
            last_toplevel_call("g.read().bytes()[0]").as_deref(),
            Some("bytes")
        );
    }
}
