//! Fixture tests: each known-bad snippet under `tests/fixtures/` must
//! trip exactly its rule at the expected lines, and the real workspace
//! must scan clean. Fixtures are fed to [`natix_lint::check_file`] under
//! impersonated repo-relative paths (rule dispatch is path-based), so a
//! fixture can pretend to live anywhere in the tree.

use std::path::Path;

use natix_lint::{check_file, rule_durable_gate, Violation};

fn lines_for(violations: &[Violation], rule: &str) -> Vec<usize> {
    violations
        .iter()
        .filter(|v| v.rule == rule)
        .map(|v| v.line)
        .collect()
}

#[test]
fn storage_panic_fixture_trips_rule() {
    let src = include_str!("fixtures/storage_panics.rs");
    let violations = check_file(Path::new("crates/storage/src/storage_panics.rs"), src);
    assert_eq!(lines_for(&violations, "storage-panic"), vec![5, 9]);
    assert!(
        violations.iter().all(|v| v.rule == "storage-panic"),
        "unexpected extra rules: {violations:?}"
    );
}

#[test]
fn storage_panic_rule_is_path_scoped() {
    // The same source outside crates/storage/src is not the rule's business.
    let src = include_str!("fixtures/storage_panics.rs");
    let violations = check_file(Path::new("crates/core/src/storage_panics.rs"), src);
    assert!(lines_for(&violations, "storage-panic").is_empty());
}

#[test]
fn dropped_guard_fixture_trips_rule() {
    let src = include_str!("fixtures/dropped_guards.rs");
    let violations = check_file(Path::new("crates/core/src/dropped_guards.rs"), src);
    assert_eq!(lines_for(&violations, "guard-discipline"), vec![5, 6, 7]);
}

#[test]
fn std_sync_fixture_trips_rule() {
    let src = include_str!("fixtures/std_sync.rs");
    let violations = check_file(Path::new("crates/core/src/std_sync.rs"), src);
    assert_eq!(lines_for(&violations, "shim-bypass"), vec![5, 9, 13, 14]);
}

#[test]
fn shim_itself_is_exempt() {
    let src = include_str!("fixtures/std_sync.rs");
    let violations = check_file(Path::new("crates/shims/parking_lot/src/std_sync.rs"), src);
    assert!(violations.is_empty());
}

#[test]
fn missing_gate_fixture_trips_rule() {
    let src = include_str!("fixtures/missing_gate.rs");
    let violations = rule_durable_gate(&[(Path::new("crates/core/src/document.rs"), src)]);
    let flagged: Vec<&str> = violations
        .iter()
        .map(|v| {
            v.message
                .split('`')
                .nth(1)
                .expect("message names the fn in backticks")
        })
        .collect();
    assert_eq!(flagged, vec!["bad_direct_edit", "bad_indirect_edit"]);
}

#[test]
fn held_prefetch_fixture_trips_rule() {
    let src = include_str!("fixtures/held_prefetch.rs");
    let violations = check_file(Path::new("crates/core/src/held_prefetch.rs"), src);
    assert_eq!(lines_for(&violations, "prefetch-lock-hold"), vec![7, 15]);
}

#[test]
fn held_prefetch_rule_skips_storage_band() {
    // Storage-band locks are io-tolerant; the static rule stays out.
    let src = include_str!("fixtures/held_prefetch.rs");
    let violations = check_file(Path::new("crates/storage/src/held_prefetch.rs"), src);
    assert!(lines_for(&violations, "prefetch-lock-hold").is_empty());
}

#[test]
fn storage_panic_rule_covers_tree() {
    // The same fixture trips when impersonated as a crates/tree file —
    // the tree layer sits under the same recovery/latching protocols.
    let src = include_str!("fixtures/storage_panics.rs");
    let violations = check_file(Path::new("crates/tree/src/storage_panics.rs"), src);
    assert_eq!(lines_for(&violations, "storage-panic"), vec![5, 9]);
}

#[test]
fn unranked_lock_fixture_trips_rule() {
    let src = include_str!("fixtures/unranked_locks.rs");
    let violations = check_file(Path::new("crates/storage/src/unranked_locks.rs"), src);
    assert_eq!(lines_for(&violations, "unranked-lock"), vec![7, 11, 15]);
}

#[test]
fn unranked_lock_fixture_trips_in_every_engine_crate() {
    let src = include_str!("fixtures/unranked_locks.rs");
    for krate in ["core", "tree"] {
        let path = format!("crates/{krate}/src/unranked_locks.rs");
        let violations = check_file(Path::new(&path), src);
        assert_eq!(
            lines_for(&violations, "unranked-lock"),
            vec![7, 11, 15],
            "under crates/{krate}"
        );
    }
}

#[test]
fn unranked_lock_rule_is_path_scoped() {
    // Outside the engine crates (core/storage/tree) a bare constructor —
    // e.g. in a bench harness — is not the rule's business.
    let src = include_str!("fixtures/unranked_locks.rs");
    let violations = check_file(Path::new("crates/lint/src/unranked_locks.rs"), src);
    assert!(lines_for(&violations, "unranked-lock").is_empty());
}

#[test]
fn workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate sits two levels under the workspace root");
    let violations = natix_lint::check_workspace(root);
    assert!(
        violations.is_empty(),
        "workspace lint violations:\n{}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
