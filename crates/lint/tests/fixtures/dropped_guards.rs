//! Known-bad fixture for the `guard-discipline` rule: `let _ =` bindings
//! that drop RAII guards on the spot. Never compiled.

fn bad(state: &parking_lot::Mutex<u32>, latch: &parking_lot::RwLock<u32>) {
    let _ = state.lock(); // line 5: flagged (guard dropped immediately)
    let _ = latch.read(); // line 6: flagged
    let _ = latch.try_write().unwrap(); // line 7: flagged through the unwrap
}

fn fine(state: &parking_lot::Mutex<u32>) -> String {
    let _guard = state.lock(); // named binding lives to end of scope: ok
    let _ = compute(); // not a guard-producing call: ok
    let mut s = String::new();
    let _ = writeln!(s, "{}", state.lock()); // top-level call is writeln: ok
    s
}

fn compute() -> u32 {
    7
}
