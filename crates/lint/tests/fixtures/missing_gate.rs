//! Known-bad fixture for the `durable-gate` rule. Impersonated as
//! `crates/core/src/document.rs` by the harness; never compiled.

impl Document {
    /// Publishes directly but never gates: flagged.
    pub fn bad_direct_edit(&self) -> Result<(), ()> {
        let op = self.versions.begin_write();
        op.apply()?;
        Ok(())
    }

    /// Publishes through a helper and never gates: flagged (transitive).
    pub fn bad_indirect_edit(&self) -> Result<(), ()> {
        self.publish_helper()?;
        Ok(())
    }

    /// Publishes and gates: clean.
    pub fn good_edit(&self) -> Result<(), ()> {
        let op = self.versions.begin_write();
        op.apply()?;
        self.durable_gate()?;
        Ok(())
    }

    /// Gates through a helper: clean.
    pub fn good_indirect_edit(&self) -> Result<(), ()> {
        self.publish_helper()?;
        self.gate_helper()?;
        Ok(())
    }

    /// No publish at all: clean even without a gate.
    pub fn read_only(&self) -> u32 {
        self.len()
    }

    fn publish_helper(&self) -> Result<(), ()> {
        self.versions.defer_until_publish();
        Ok(())
    }

    fn gate_helper(&self) -> Result<(), ()> {
        self.durable_gate()
    }
}
