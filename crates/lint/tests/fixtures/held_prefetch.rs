// Known-bad: buffer prefetch / batched reads issued while a mutex guard
// is lexically live. Never compiled — scanned by the lint fixture test.

pub fn bad_prefetch_under_lock(&self) {
    let st = self.queue.lock();
    let pages = snapshot(&st);
    self.tree.prefetch_pages(&pages);
    drop(st);
}

pub fn bad_read_pages_in_lock_block(&self) {
    let pages = {
        let guard = self.state.lock();
        let mut reqs = gather(&guard);
        self.backend.read_pages(&mut reqs);
        collect(reqs)
    };
    consume(pages);
}

pub fn good_snapshot_then_prefetch(&self) {
    let pages = {
        let st = self.queue.lock();
        snapshot(&st)
    };
    self.tree.prefetch_pages(&pages);
}

pub fn good_explicit_drop(&self) {
    let st = self.queue.lock();
    let pages = snapshot(&st);
    drop(st);
    self.pool.prefetch(&pages);
}
