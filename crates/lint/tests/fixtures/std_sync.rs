//! Known-bad fixture for the `shim-bypass` rule: std::sync lock
//! primitives constructed behind the shim's back. Never compiled.

use std::sync::Arc; // Arc is fine
use std::sync::Mutex; // line 5: flagged
use std::sync::atomic::AtomicU64; // atomics are fine

struct Holder {
    slot: std::sync::RwLock<u32>, // line 9: flagged
    count: Arc<AtomicU64>,
}

fn make() -> std::sync::Condvar {
    std::sync::Condvar::new() // lines 13+14: flagged
}
