//! Known-bad fixture for the `storage-panic` rule. Impersonated as a
//! `crates/storage/src` file by the harness; never compiled.

pub fn bad_unwrap(map: &std::collections::HashMap<u32, u32>) -> u32 {
    *map.get(&0).unwrap() // line 5: flagged
}

pub fn bad_expect(v: Option<u32>) -> u32 {
    v.expect("always there") // line 9: flagged
}

pub fn fine(v: Option<u32>) -> Result<u32, String> {
    // A comment saying .unwrap() is not a violation, nor is ".expect(" here.
    v.ok_or_else(|| "missing".to_string())
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        Some(1u32).unwrap();
    }
}
