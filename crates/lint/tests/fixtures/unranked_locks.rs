//! Known-bad fixture for the `unranked-lock` rule. Impersonated as an
//! engine-crate file by the harness; never compiled.

use parking_lot::{Mutex, RwLock};

pub fn bad_mutex() -> Mutex<u32> {
    Mutex::new(0) // line 7: flagged
}

pub fn bad_rwlock() -> RwLock<u32> {
    RwLock::new(0) // line 11: flagged
}

pub fn bad_qualified() -> parking_lot::Mutex<u32> {
    parking_lot::Mutex::new(0) // line 15: flagged
}

pub fn fine_ranked() -> Mutex<u32> {
    Mutex::with_rank(&parking_lot::rank::REGISTRY, 0)
}

pub fn fine_marker_above() -> Mutex<u32> {
    // natix-lint: allow(unranked-lock): fixture's deliberate leaf lock
    Mutex::new(0)
}

pub fn fine_marker_same_line() -> RwLock<u32> {
    RwLock::new(0) // natix-lint: allow(unranked-lock): same-line marker
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_locks_in_tests_are_fine() {
        let _ = Mutex::new(1u32);
        let _ = RwLock::new(1u32);
    }
}
