//! Deterministic pseudo-random numbers.
//!
//! SplitMix64 — tiny, fast, and completely reproducible across platforms,
//! which matters more here than statistical sophistication: the corpus must
//! be bit-identical between runs so experiments are comparable.

/// SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; returns 0 for `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform value in `[lo, hi]` (inclusive).
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// True with probability `p` (clamped to [0, 1]).
    pub fn chance(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }

    /// Forks an independent stream (e.g. one per play) so inserting a play
    /// does not shift the randomness of the others.
    pub fn fork(&mut self, tag: u64) -> SplitMix64 {
        SplitMix64::new(self.next_u64() ^ tag.wrapping_mul(0xA24B_AED4_963E_E407))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_and_range_bounds() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let v = r.below(10);
            assert!(v < 10);
            let w = r.range(5, 8);
            assert!((5..=8).contains(&w));
        }
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(3);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn forks_are_independent_of_consumption() {
        let mut a = SplitMix64::new(9);
        let mut fork_a = a.fork(1);
        let mut b = SplitMix64::new(9);
        let mut fork_b = b.fork(1);
        assert_eq!(fork_a.next_u64(), fork_b.next_u64());
    }
}
