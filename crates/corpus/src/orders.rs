//! Insertion orders (§4.3).
//!
//! > For storage, we used an XML parser written in C and inserted the
//! > document tree in two different insertion orders. First, in pre-order,
//! > to represent a "bulkload" of or consecutive appends to a textual
//! > representation. Second, we traversed the binary tree representation
//! > of the document tree (in which each node has its first child as left
//! > binary child and next sibling as right binary child) with
//! > breadth-first search to insert the nodes, resulting in an incremental
//! > update pattern where inserts occur distributed over the whole
//! > document.
//!
//! Each order is a sequence of [`InsertStep`]s whose [`Anchor`] names an
//! already-inserted node: pre-order appends as the last child of the
//! parent; the binary-BFS order inserts either as the *first child* of the
//! binary parent (left edge) or as the *next sibling* of it (right edge) —
//! both anchors are guaranteed inserted because BFS emits parents before
//! children.

use natix_xml::{Document, NodeIdx};

/// Where a node is inserted relative to an already-inserted anchor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Anchor {
    /// Append as the last child of this (already inserted) node.
    LastChildOf(NodeIdx),
    /// Insert as the first child of this node.
    FirstChildOf(NodeIdx),
    /// Insert as the next sibling of this node.
    After(NodeIdx),
}

/// One step of an insertion workload: create `node` (whose payload the
/// driver looks up in the source document) at `anchor`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsertStep {
    pub node: NodeIdx,
    pub anchor: Anchor,
}

/// Pre-order ("append" / bulkload) insertion order: every node is appended
/// as the last child of its parent, parents before children, siblings left
/// to right. The root is not included (it is created by the driver).
pub fn append_order(doc: &Document) -> Vec<InsertStep> {
    let mut steps = Vec::with_capacity(doc.node_count().saturating_sub(1));
    for node in doc.pre_order() {
        if let Some(parent) = doc.parent(node) {
            steps.push(InsertStep {
                node,
                anchor: Anchor::LastChildOf(parent),
            });
        }
    }
    steps
}

/// Incremental-update insertion order: BFS over the binary-tree
/// representation (first child = left, next sibling = right). The root is
/// not included.
pub fn incremental_order(doc: &Document) -> Vec<InsertStep> {
    let mut steps = Vec::with_capacity(doc.node_count().saturating_sub(1));
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(doc.root());
    while let Some(n) = queue.pop_front() {
        // Left binary child: the first logical child.
        if let Some(&first) = doc.children(n).first() {
            steps.push(InsertStep {
                node: first,
                anchor: Anchor::FirstChildOf(n),
            });
            queue.push_back(first);
        }
        // Right binary child: the next logical sibling.
        if let Some(parent) = doc.parent(n) {
            let kids = doc.children(parent);
            let my = kids
                .iter()
                .position(|&c| c == n)
                .expect("listed under parent");
            if let Some(&next) = kids.get(my + 1) {
                steps.push(InsertStep {
                    node: next,
                    anchor: Anchor::After(n),
                });
                queue.push_back(next);
            }
        }
    }
    steps
}

/// Checks that an order is executable: every step's anchor was inserted by
/// an earlier step (or is the root), and every non-root node appears
/// exactly once. Used by tests and debug assertions in the harness.
pub fn validate_order(doc: &Document, steps: &[InsertStep]) -> Result<(), String> {
    let mut inserted = vec![false; doc.node_count()];
    inserted[doc.root() as usize] = true;
    for (i, step) in steps.iter().enumerate() {
        let anchor = match step.anchor {
            Anchor::LastChildOf(a) | Anchor::FirstChildOf(a) | Anchor::After(a) => a,
        };
        if !inserted[anchor as usize] {
            return Err(format!("step {i}: anchor {anchor} not yet inserted"));
        }
        if inserted[step.node as usize] {
            return Err(format!("step {i}: node {} inserted twice", step.node));
        }
        inserted[step.node as usize] = true;
    }
    let missing = inserted.iter().filter(|&&b| !b).count();
    if missing > 0 {
        return Err(format!("{missing} nodes never inserted"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use natix_xml::{parse_document, ParserOptions, SymbolTable};

    fn sample() -> Document {
        let mut syms = SymbolTable::new();
        parse_document(
            "<a><b><c/><d/></b><e>text</e><f><g><h/></g></f></a>",
            &mut syms,
            ParserOptions::default(),
        )
        .unwrap()
    }

    #[test]
    fn append_order_is_preorder() {
        let doc = sample();
        let steps = append_order(&doc);
        assert_eq!(steps.len(), doc.node_count() - 1);
        validate_order(&doc, &steps).unwrap();
        // Pre-order: each step's node id sequence follows document order.
        let order: Vec<NodeIdx> = doc.pre_order().skip(1).collect();
        let got: Vec<NodeIdx> = steps.iter().map(|s| s.node).collect();
        assert_eq!(got, order);
        assert!(steps
            .iter()
            .all(|s| matches!(s.anchor, Anchor::LastChildOf(_))));
    }

    #[test]
    fn incremental_order_is_valid_and_different() {
        let doc = sample();
        let steps = incremental_order(&doc);
        assert_eq!(steps.len(), doc.node_count() - 1);
        validate_order(&doc, &steps).unwrap();
        let pre: Vec<NodeIdx> = append_order(&doc).iter().map(|s| s.node).collect();
        let inc: Vec<NodeIdx> = steps.iter().map(|s| s.node).collect();
        assert_ne!(
            pre, inc,
            "BFS over the binary tree must differ from pre-order"
        );
    }

    #[test]
    fn incremental_order_interleaves_subtrees() {
        // The binary-BFS property the paper relies on: inserts are spread
        // over the document rather than completing one subtree at a time.
        let doc = sample();
        let steps = incremental_order(&doc);
        let ids: Vec<NodeIdx> = steps.iter().map(|s| s.node).collect();
        // In pre-order, all of b's subtree (c, d) comes before f's (g, h).
        // In binary BFS, g (child of f) is reached at depth 3 while d (b's
        // second child) is also at depth 3 — the two subtrees interleave.
        let pos = |x: NodeIdx| ids.iter().position(|&n| n == x).unwrap();
        // Node indices in `sample` parse order: a=0 b=1 c=2 d=3 e=4 text=5 f=6 g=7 h=8.
        // Pre-order finishes b's subtree (c, d) before e; binary BFS visits
        // e (b's sibling, binary depth 2) before d (binary depth 3).
        assert!(pos(4) < pos(3), "subtree interleaving expected: {ids:?}");
    }

    #[test]
    fn validate_rejects_bad_orders() {
        let doc = sample();
        let mut steps = append_order(&doc);
        // Swap the first two steps: child before parent.
        steps.swap(0, 1);
        assert!(validate_order(&doc, &steps).is_err());
        let steps = append_order(&doc);
        assert!(
            validate_order(&doc, &steps[1..]).is_err(),
            "missing nodes detected"
        );
    }

    #[test]
    fn orders_on_corpus_play() {
        let mut syms = SymbolTable::new();
        let play = crate::shakespeare::generate_play(
            &crate::shakespeare::CorpusConfig::tiny(),
            0,
            &mut syms,
        );
        let a = append_order(&play.doc);
        let i = incremental_order(&play.doc);
        validate_order(&play.doc, &a).unwrap();
        validate_order(&play.doc, &i).unwrap();
        assert_eq!(a.len(), i.len());
    }
}
