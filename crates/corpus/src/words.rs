//! Word material for the synthetic Shakespeare-like corpus.
//!
//! Only the *statistics* of the text matter for the storage experiments
//! (token lengths and line lengths drive literal sizes); the vocabulary
//! below gives period-flavoured text with an average word length close to
//! the English prose average (~4.7 characters).

/// Common and period-flavoured words for line text.
#[rustfmt::skip]
pub const WORDS: &[&str] = &[
    "the", "and", "to", "of", "a", "my", "in", "you", "is", "that", "it",
    "not", "his", "me", "with", "be", "your", "for", "he", "this", "have",
    "thou", "but", "as", "him", "so", "will", "what", "thy", "all", "her",
    "no", "by", "do", "shall", "if", "are", "we", "thee", "on", "lord",
    "our", "king", "good", "now", "sir", "from", "come", "at", "they", "she",
    "or", "here", "would", "more", "was", "how", "let", "there", "am",
    "love", "man", "them", "hath", "than", "like", "one", "go", "upon",
    "say", "may", "make", "did", "us", "yet", "should", "know", "then",
    "take", "see", "when", "their", "most", "such", "where", "out", "well",
    "speak", "night", "day", "heart", "death", "time", "never", "life",
    "think", "give", "honour", "father", "blood", "eyes", "heaven", "word",
    "noble", "sweet", "fair", "true", "great", "poor", "hand", "head",
    "world", "nature", "soul", "grace", "majesty", "crown", "sword",
    "battle", "fortune", "sorrow", "tears", "fear", "hope", "grief", "joy",
    "rage", "villain", "friend", "enemy", "brother", "daughter", "mother",
    "wife", "son", "duke", "prince", "queen", "lady", "master", "servant",
    "soldier", "messenger", "gentleman", "madam", "cousin", "uncle",
    "tonight", "tomorrow", "yesterday", "morrow", "anon", "prithee",
    "forsooth", "wherefore", "hither", "thither", "henceforth", "perchance",
    "methinks", "alas", "farewell", "adieu", "hark", "behold", "attend",
    "beseech",
];

/// Speaker names (drawn per play, prefixed to vary across plays).
#[rustfmt::skip]
pub const SPEAKERS: &[&str] = &[
    "OTHELLO", "HAMLET", "MACBETH", "LEAR", "ROSALIND", "VIOLA", "PORTIA",
    "BRUTUS", "CASSIUS", "ANTONY", "CLEOPATRA", "PROSPERO", "MIRANDA",
    "ARIEL", "CALIBAN", "ORLANDO", "ORSINO", "OLIVIA", "MALVOLIO", "FESTE",
    "TOUCHSTONE", "JAQUES", "BENEDICK", "BEATRICE", "CLAUDIO", "HERO",
    "LEONATO", "DOGBERRY", "SHYLOCK", "BASSANIO", "ANTONIO", "GRATIANO",
    "NERISSA", "JESSICA", "LORENZO", "PUCK", "OBERON", "TITANIA", "BOTTOM",
    "LYSANDER", "DEMETRIUS", "HERMIA", "HELENA", "THESEUS", "HIPPOLYTA",
    "EGEUS", "MERCUTIO", "TYBALT", "ROMEO", "JULIET", "CAPULET", "MONTAGUE",
    "FRIAR", "NURSE", "PARIS", "BENVOLIO", "FALSTAFF", "HOTSPUR",
    "GLENDOWER", "WESTMORELAND", "EXETER", "GLOUCESTER", "KENT", "CORDELIA",
    "GONERIL", "REGAN", "EDMUND", "EDGAR", "ALBANY", "CORNWALL", "OSWALD",
    "FOOL", "IAGO", "DESDEMONA", "CASSIO", "EMILIA", "RODERIGO", "BRABANTIO",
    "LODOVICO", "MESSENGER", "SERVANT", "FIRST_LORD", "SECOND_LORD",
    "FIRST_WITCH", "SECOND_WITCH", "THIRD_WITCH", "BANQUO", "MACDUFF",
    "DUNCAN", "MALCOLM", "DONALBAIN", "LENNOX", "ROSS",
];

/// Title fragments for generated plays.
#[rustfmt::skip]
pub const TITLE_HEADS: &[&str] = &[
    "The Tragedy of", "The Comedy of", "The History of", "The Life of",
    "The Famous Chronicle of", "The Merry Tale of",
    "The Lamentable Story of", "The True Account of",
];

/// Title subjects.
#[rustfmt::skip]
pub const TITLE_SUBJECTS: &[&str] = &[
    "Albion", "Verona", "Illyria", "Bohemia", "Navarre", "Messina",
    "Elsinore", "Dunsinane", "Arden", "Belmont", "Cyprus", "Venice",
    "Athens", "Ephesus", "Padua", "Windsor", "Rousillon", "Tyre", "Antioch",
    "Pentapolis", "Mytilene", "Sicilia", "Britain", "Troy", "Rome", "Egypt",
    "Scotland", "Denmark", "Vienna", "Florence", "Milan", "Naples",
    "Aquitaine", "Gaultree", "Agincourt", "Bosworth", "Shrewsbury",
];

/// Stage-direction templates.
#[rustfmt::skip]
pub const STAGEDIRS: &[&str] = &[
    "Enter", "Exit", "Exeunt", "Flourish", "Alarum", "Enter, fighting",
    "Dies", "Aside", "Within", "Trumpets sound", "Thunder and lightning",
    "Enter with attendants", "Exeunt all but", "Drawing his sword",
    "Reads the letter", "Kneels",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocabulary_sizes() {
        assert!(WORDS.len() >= 150);
        assert!(SPEAKERS.len() >= 80);
        assert_eq!(
            TITLE_SUBJECTS.len(),
            37,
            "one subject per play of the canon"
        );
    }

    #[test]
    fn average_word_length_is_prose_like() {
        let total: usize = WORDS.iter().map(|w| w.len()).sum();
        let avg = total as f64 / WORDS.len() as f64;
        assert!((3.5..6.0).contains(&avg), "avg word length {avg}");
    }

    #[test]
    fn no_markup_characters_in_vocabulary() {
        for w in WORDS.iter().chain(SPEAKERS).chain(STAGEDIRS) {
            assert!(!w.contains(['<', '>', '&']), "{w} would need escaping");
        }
    }
}
