//! A synthetic purchase-order corpus — the "many small, uniform records"
//! counterpoint to the Shakespeare plays.
//!
//! Business documents of this shape (order batches with customer blocks
//! and line items) are the other classic XML storage workload: shallow,
//! high fan-out, short numeric-ish text. The bulkload benchmarks run both
//! corpora because they stress the packer differently — plays produce
//! long sibling runs of mid-sized SPEECH subtrees, order batches produce
//! huge runs of small ORDER subtrees.
//!
//! ```text
//! ORDERS ── ORDER*
//! ORDER ── ID, DATE, CUSTOMER(NAME, CITY), ITEM*
//! ITEM ── SKU, QTY, PRICE
//! ```
//!
//! Generation is deterministic in the seed.

use natix_xml::{Document, NodeData, SymbolTable};

use crate::prng::SplitMix64;
use crate::words::WORDS;

/// Purchase-order generation parameters.
#[derive(Debug, Clone)]
pub struct OrdersConfig {
    /// Number of orders in the batch document.
    pub orders: usize,
    /// Master seed.
    pub seed: u64,
}

impl OrdersConfig {
    /// A batch comparable in node count to one large play (≈10k nodes).
    pub fn paper() -> OrdersConfig {
        OrdersConfig {
            orders: 600,
            seed: 0x0D0E_0A11,
        }
    }

    /// A reduced batch for fast tests.
    pub fn tiny() -> OrdersConfig {
        OrdersConfig {
            orders: 40,
            seed: 0x0D0E_0A11,
        }
    }
}

/// Labels used by the order documents, interned once.
pub struct OrderLabels {
    pub orders: u16,
    pub order: u16,
    pub id: u16,
    pub date: u16,
    pub customer: u16,
    pub name: u16,
    pub city: u16,
    pub item: u16,
    pub sku: u16,
    pub qty: u16,
    pub price: u16,
}

impl OrderLabels {
    /// Interns the order element alphabet.
    pub fn intern(symbols: &mut SymbolTable) -> OrderLabels {
        OrderLabels {
            orders: symbols.intern_element("ORDERS"),
            order: symbols.intern_element("ORDER"),
            id: symbols.intern_element("ID"),
            date: symbols.intern_element("DATE"),
            customer: symbols.intern_element("CUSTOMER"),
            name: symbols.intern_element("NAME"),
            city: symbols.intern_element("CITY"),
            item: symbols.intern_element("ITEM"),
            sku: symbols.intern_element("SKU"),
            qty: symbols.intern_element("QTY"),
            price: symbols.intern_element("PRICE"),
        }
    }
}

/// Generates one deterministic order-batch document.
pub fn generate_orders(cfg: &OrdersConfig, symbols: &mut SymbolTable) -> Document {
    let l = OrderLabels::intern(symbols);
    let mut rng = SplitMix64::new(cfg.seed);
    let mut doc = Document::new(NodeData::Element(l.orders));
    let root = doc.root();
    let leaf = |doc: &mut Document, parent, label, text: String| {
        let e = doc.add_child(parent, NodeData::Element(label));
        doc.add_child(e, NodeData::text(text));
    };
    for i in 0..cfg.orders {
        let order = doc.add_child(root, NodeData::Element(l.order));
        leaf(&mut doc, order, l.id, format!("PO-{i:06}"));
        leaf(
            &mut doc,
            order,
            l.date,
            format!(
                "19{:02}-{:02}-{:02}",
                rng.range(90, 100),
                rng.range(1, 13),
                rng.range(1, 29)
            ),
        );
        let customer = doc.add_child(order, NodeData::Element(l.customer));
        let first = rng.pick(WORDS);
        let last = rng.pick(WORDS);
        leaf(
            &mut doc,
            customer,
            l.name,
            format!("{} {}", capitalised(first), capitalised(last)),
        );
        let city = rng.pick(WORDS);
        leaf(&mut doc, customer, l.city, capitalised(city));
        for _ in 0..rng.range(1, 7) {
            let item = doc.add_child(order, NodeData::Element(l.item));
            leaf(
                &mut doc,
                item,
                l.sku,
                format!("SKU-{:05}", rng.below(100_000)),
            );
            leaf(&mut doc, item, l.qty, format!("{}", rng.range(1, 100)));
            leaf(
                &mut doc,
                item,
                l.price,
                format!("{}.{:02}", rng.range(1, 500), rng.below(100)),
            );
        }
    }
    doc
}

fn capitalised(word: &str) -> String {
    let mut chars = word.chars();
    match chars.next() {
        Some(first) => first.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_well_formed() {
        let mut s1 = SymbolTable::new();
        let mut s2 = SymbolTable::new();
        let a = generate_orders(&OrdersConfig::tiny(), &mut s1);
        let b = generate_orders(&OrdersConfig::tiny(), &mut s2);
        assert!(
            a.subtree_eq(a.root(), &b, b.root()),
            "same seed, same document"
        );
        assert_eq!(a.children(a.root()).len(), OrdersConfig::tiny().orders);
        // Round-trips through the writer/parser.
        let xml = natix_xml::write_document(&a, &s1, natix_xml::WriteOptions::compact()).unwrap();
        let mut s3 = SymbolTable::new();
        let back =
            natix_xml::parse_document(&xml, &mut s3, natix_xml::ParserOptions::default()).unwrap();
        assert_eq!(back.node_count(), a.node_count());
    }

    #[test]
    fn paper_batch_is_substantial() {
        let mut syms = SymbolTable::new();
        let doc = generate_orders(&OrdersConfig::paper(), &mut syms);
        assert!(
            doc.node_count() > 8_000,
            "batch has {} nodes",
            doc.node_count()
        );
    }
}
