//! The synthetic Shakespeare-like document collection (§4.1 substitute).
//!
//! Structure follows Jon Bosak's play markup:
//!
//! ```text
//! PLAY ── TITLE, PERSONAE(TITLE, PERSONA*), ACT*
//! ACT ── TITLE, SCENE*
//! SCENE ── TITLE, (SPEECH | STAGEDIR)*
//! SPEECH ── SPEAKER, LINE*
//! ```
//!
//! Default calibration ([`CorpusConfig::paper`]): 37 plays, ≈320 000
//! logical nodes, ≈8 MB of XML — the figures the paper reports for its
//! corpus. All constants are per-play deterministic: regenerating play 17
//! always yields the same document, regardless of how many plays are
//! requested.

use natix_xml::{Document, NodeData, SymbolTable};

use crate::prng::SplitMix64;
use crate::words::{SPEAKERS, STAGEDIRS, TITLE_HEADS, TITLE_SUBJECTS, WORDS};

/// Corpus generation parameters.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Number of plays (the canon has 37).
    pub plays: usize,
    /// Master seed.
    pub seed: u64,
    /// Scales speech counts (1.0 = the paper's ≈320k-node corpus).
    pub scale: f64,
}

impl CorpusConfig {
    /// The paper's corpus: 37 plays, ≈320k nodes, ≈8 MB.
    pub fn paper() -> CorpusConfig {
        CorpusConfig {
            plays: 37,
            seed: 0x5EED_BA5E,
            scale: 1.0,
        }
    }

    /// A reduced corpus for fast tests/benches (≈1/20 of the paper's).
    pub fn tiny() -> CorpusConfig {
        CorpusConfig {
            plays: 4,
            seed: 0x5EED_BA5E,
            scale: 0.15,
        }
    }
}

/// One generated play.
pub struct PlayDoc {
    /// Unique name, e.g. `play-07`.
    pub name: String,
    /// Human-readable title.
    pub title: String,
    /// The logical document.
    pub doc: Document,
}

/// Aggregate corpus statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusStats {
    pub plays: usize,
    pub nodes: usize,
    pub speeches: usize,
    pub lines: usize,
}

/// Labels used by the corpus, interned once.
pub struct PlayLabels {
    pub play: u16,
    pub title: u16,
    pub personae: u16,
    pub persona: u16,
    pub act: u16,
    pub scene: u16,
    pub speech: u16,
    pub speaker: u16,
    pub line: u16,
    pub stagedir: u16,
}

impl PlayLabels {
    /// Interns the play element alphabet (ΣDTD of the corpus DTD).
    pub fn intern(symbols: &mut SymbolTable) -> PlayLabels {
        PlayLabels {
            play: symbols.intern_element("PLAY"),
            title: symbols.intern_element("TITLE"),
            personae: symbols.intern_element("PERSONAE"),
            persona: symbols.intern_element("PERSONA"),
            act: symbols.intern_element("ACT"),
            scene: symbols.intern_element("SCENE"),
            speech: symbols.intern_element("SPEECH"),
            speaker: symbols.intern_element("SPEAKER"),
            line: symbols.intern_element("LINE"),
            stagedir: symbols.intern_element("STAGEDIR"),
        }
    }
}

/// The corpus DTD (registered with the schema manager by examples/tests).
pub const PLAY_DTD: &str = r#"<!ELEMENT PLAY (TITLE, PERSONAE, ACT+)>
<!ELEMENT TITLE (#PCDATA)>
<!ELEMENT PERSONAE (TITLE, PERSONA+)>
<!ELEMENT PERSONA (#PCDATA)>
<!ELEMENT ACT (TITLE, SCENE+)>
<!ELEMENT SCENE (TITLE, (SPEECH | STAGEDIR)+)>
<!ELEMENT SPEECH (SPEAKER, (LINE | STAGEDIR)+)>
<!ELEMENT SPEAKER (#PCDATA)>
<!ELEMENT LINE (#PCDATA)>
<!ELEMENT STAGEDIR (#PCDATA)>"#;

fn sentence(rng: &mut SplitMix64, min_words: usize, max_words: usize) -> String {
    let n = rng.range(min_words, max_words);
    let mut out = String::with_capacity(n * 6);
    for i in 0..n {
        let w = rng.pick(WORDS);
        if i == 0 {
            let mut cs = w.chars();
            if let Some(c) = cs.next() {
                out.extend(c.to_uppercase());
                out.push_str(cs.as_str());
            }
        } else {
            out.push(' ');
            out.push_str(w);
        }
    }
    match rng.below(6) {
        0 => out.push('.'),
        1 => out.push(','),
        2 => out.push(';'),
        3 => out.push('!'),
        4 => out.push('?'),
        _ => out.push(':'),
    }
    out
}

/// Generates play number `index` (0-based) of the corpus.
pub fn generate_play(cfg: &CorpusConfig, index: usize, symbols: &mut SymbolTable) -> PlayDoc {
    let labels = PlayLabels::intern(symbols);
    let mut master = SplitMix64::new(cfg.seed);
    let mut rng = master.fork(index as u64 + 1);

    let title = format!(
        "{} {}",
        TITLE_HEADS[rng.below(TITLE_HEADS.len())],
        TITLE_SUBJECTS[index % TITLE_SUBJECTS.len()]
    );
    let mut doc = Document::new(NodeData::Element(labels.play));
    let root = doc.root();

    let t = doc.add_child(root, NodeData::Element(labels.title));
    doc.add_child(t, NodeData::text(title.clone()));

    // Dramatis personae: a cast of 18–30 speakers for this play.
    let cast_size = rng.range(18, 30);
    let cast_base = rng.below(SPEAKERS.len());
    let cast: Vec<&str> = (0..cast_size)
        .map(|i| SPEAKERS[(cast_base + i * 7) % SPEAKERS.len()])
        .collect();
    let personae = doc.add_child(root, NodeData::Element(labels.personae));
    let pt = doc.add_child(personae, NodeData::Element(labels.title));
    doc.add_child(pt, NodeData::text("Dramatis Personae"));
    for name in &cast {
        let p = doc.add_child(personae, NodeData::Element(labels.persona));
        doc.add_child(
            p,
            NodeData::text(format!("{name}, of {}", rng.pick(TITLE_SUBJECTS))),
        );
    }

    let acts = 5;
    for act_no in 1..=acts {
        let act = doc.add_child(root, NodeData::Element(labels.act));
        let at = doc.add_child(act, NodeData::Element(labels.title));
        doc.add_child(at, NodeData::text(format!("ACT {}", roman(act_no))));
        let scenes = rng.range(3, 5);
        for scene_no in 1..=scenes {
            let scene = doc.add_child(act, NodeData::Element(labels.scene));
            let st = doc.add_child(scene, NodeData::Element(labels.title));
            doc.add_child(
                st,
                NodeData::text(format!(
                    "SCENE {}. {}.",
                    roman(scene_no),
                    sentence(&mut rng, 3, 6)
                )),
            );
            let speeches = ((rng.range(26, 46) as f64) * cfg.scale).round().max(1.0) as usize;
            let mut speaker_idx = rng.below(cast.len());
            for _ in 0..speeches {
                if rng.chance(0.12) {
                    let sd = doc.add_child(scene, NodeData::Element(labels.stagedir));
                    doc.add_child(
                        sd,
                        NodeData::text(format!(
                            "{} {}",
                            rng.pick(STAGEDIRS),
                            cast[rng.below(cast.len())]
                        )),
                    );
                }
                let speech = doc.add_child(scene, NodeData::Element(labels.speech));
                // Dialogue alternates speakers with occasional jumps.
                speaker_idx = if rng.chance(0.7) {
                    (speaker_idx + 1) % cast.len()
                } else {
                    rng.below(cast.len())
                };
                let sp = doc.add_child(speech, NodeData::Element(labels.speaker));
                doc.add_child(sp, NodeData::text(cast[speaker_idx]));
                let lines = rng.range(1, 8); // avg 4.5
                for _ in 0..lines {
                    let line = doc.add_child(speech, NodeData::Element(labels.line));
                    doc.add_child(line, NodeData::text(sentence(&mut rng, 5, 11)));
                }
            }
        }
    }
    PlayDoc {
        name: format!("play-{index:02}"),
        title,
        doc,
    }
}

/// Generates the whole corpus.
pub fn generate_corpus(cfg: &CorpusConfig, symbols: &mut SymbolTable) -> Vec<PlayDoc> {
    (0..cfg.plays)
        .map(|i| generate_play(cfg, i, symbols))
        .collect()
}

/// Computes aggregate statistics of generated plays.
pub fn corpus_stats(plays: &[PlayDoc], symbols: &SymbolTable) -> CorpusStats {
    let speech = symbols.lookup_element("SPEECH");
    let line = symbols.lookup_element("LINE");
    let mut stats = CorpusStats {
        plays: plays.len(),
        nodes: 0,
        speeches: 0,
        lines: 0,
    };
    for p in plays {
        stats.nodes += p.doc.node_count();
        for n in p.doc.pre_order() {
            let l = p.doc.data(n).label();
            if Some(l) == speech {
                stats.speeches += 1;
            } else if Some(l) == line {
                stats.lines += 1;
            }
        }
    }
    stats
}

fn roman(n: usize) -> &'static str {
    match n {
        1 => "I",
        2 => "II",
        3 => "III",
        4 => "IV",
        5 => "V",
        6 => "VI",
        _ => "VII",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_per_play() {
        let cfg = CorpusConfig::paper();
        let mut s1 = SymbolTable::new();
        let mut s2 = SymbolTable::new();
        let a = generate_play(&cfg, 17, &mut s1);
        let b = generate_play(&cfg, 17, &mut s2);
        assert_eq!(a.title, b.title);
        assert!(a.doc == b.doc, "same play must be bit-identical");
    }

    #[test]
    fn plays_differ() {
        let cfg = CorpusConfig::paper();
        let mut syms = SymbolTable::new();
        let a = generate_play(&cfg, 0, &mut syms);
        let b = generate_play(&cfg, 1, &mut syms);
        assert!(a.doc != b.doc);
        assert_ne!(a.name, b.name);
    }

    #[test]
    fn play_structure_is_valid_against_dtd() {
        let cfg = CorpusConfig::tiny();
        let mut syms = SymbolTable::new();
        let play = generate_play(&cfg, 0, &mut syms);
        let dtd = natix_xml::Dtd::parse(PLAY_DTD).unwrap();
        // Validate every element's child sequence.
        for n in play.doc.pre_order() {
            if let NodeData::Element(label) = play.doc.data(n) {
                let name = syms.name(*label).to_string();
                let children: Vec<Option<String>> = play
                    .doc
                    .children(n)
                    .iter()
                    .map(|&c| match play.doc.data(c) {
                        NodeData::Element(l) => Some(syms.name(*l).to_string()),
                        NodeData::Literal { .. } => None,
                    })
                    .collect();
                let child_refs: Vec<Option<&str>> = children.iter().map(|c| c.as_deref()).collect();
                dtd.validate_element(&name, &child_refs)
                    .unwrap_or_else(|e| panic!("<{name}> invalid: {e}"));
            }
        }
    }

    #[test]
    fn xml_roundtrip() {
        let cfg = CorpusConfig::tiny();
        let mut syms = SymbolTable::new();
        let play = generate_play(&cfg, 2, &mut syms);
        let xml = natix_xml::write_document(&play.doc, &syms, natix_xml::WriteOptions::compact())
            .unwrap();
        let reparsed =
            natix_xml::parse_document(&xml, &mut syms, natix_xml::ParserOptions::default())
                .unwrap();
        assert!(reparsed == play.doc);
    }

    #[test]
    fn scale_shrinks_output() {
        let mut syms = SymbolTable::new();
        let full = generate_play(&CorpusConfig::paper(), 0, &mut syms);
        let tiny = generate_play(&CorpusConfig::tiny(), 0, &mut syms);
        assert!(tiny.doc.node_count() < full.doc.node_count() / 3);
    }

    #[test]
    fn stats_counts() {
        let cfg = CorpusConfig::tiny();
        let mut syms = SymbolTable::new();
        let plays = generate_corpus(&cfg, &mut syms);
        let stats = corpus_stats(&plays, &syms);
        assert_eq!(stats.plays, 4);
        assert!(stats.speeches > 0);
        assert!(
            stats.lines >= stats.speeches,
            "every speech has at least one line"
        );
    }
}
