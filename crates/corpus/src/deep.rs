//! A deeply nested document corpus — the depth-stress counterpoint to the
//! plays (mid-depth, long sibling runs) and the order batches (shallow,
//! huge fan-out).
//!
//! XML in the wild is occasionally *deep*: recursive part hierarchies,
//! serialized ASTs, nested message envelopes. XRecursive-style systems
//! store parent-path information precisely because such documents defeat
//! sibling-run clustering — the open spine, not the sibling runs, carries
//! the bytes. This corpus exercises exactly that regime, and the
//! depth-aware packing the bulkloader uses to keep the record-tree height
//! tracking fanout instead of document depth:
//!
//! ```text
//! SECTION ── SECTION ── SECTION ── … (one spine, `depth` levels)
//! ```
//!
//! with, per level (probabilistically, deterministic in the seed):
//!
//! * a short `#text` payload (spine weight beyond the bare headers);
//! * a small `META(NOTE #text)` sidecar finished before the spine
//!   descends further (packable sibling runs at every level);
//! * a late `TAIL(#text)` straggler appended after the level's spine
//!   child has closed — in stream order these arrive while the ancestors'
//!   records are already spilled, forcing the continuation-group path.
//!
//! Generation is deterministic in the seed.

use natix_xml::{Document, NodeData, SymbolTable};

use crate::prng::SplitMix64;

/// Deep-nesting generation parameters.
#[derive(Debug, Clone)]
pub struct DeepConfig {
    /// Nesting depth of the spine (number of nested SECTION levels).
    pub depth: usize,
    /// One in `payload_every` levels carries a text payload (0 = none).
    pub payload_every: usize,
    /// One in `sidecar_every` levels carries a finished META sidecar
    /// (0 = none).
    pub sidecar_every: usize,
    /// One in `straggler_every` levels receives a late TAIL child after
    /// its spine subtree closed (0 = none).
    pub straggler_every: usize,
    /// Master seed.
    pub seed: u64,
}

impl DeepConfig {
    /// The benchmark configuration: deep enough that the open spine spans
    /// many records at every page size the paper sweeps.
    pub fn paper() -> DeepConfig {
        DeepConfig {
            depth: 4000,
            payload_every: 2,
            sidecar_every: 3,
            straggler_every: 4,
            seed: 0xDEE9_C0DE,
        }
    }

    /// A reduced configuration for fast tests.
    pub fn tiny() -> DeepConfig {
        DeepConfig {
            depth: 400,
            ..DeepConfig::paper()
        }
    }
}

/// Generates one deeply nested document. Respects the event-stream
/// semantics of the shapes above: stragglers are appended to their level
/// *after* the spine child, so a pre-order walk delivers them once the
/// deeper subtree has closed.
pub fn generate_deep(cfg: &DeepConfig, syms: &mut SymbolTable) -> Document {
    let section = syms.intern_element("SECTION");
    let meta = syms.intern_element("META");
    let note = syms.intern_element("NOTE");
    let tail = syms.intern_element("TAIL");
    let mut g = SplitMix64::new(cfg.seed);
    let mut doc = Document::new(NodeData::Element(section));
    let mut spine = vec![doc.root()];
    let hit = |g: &mut SplitMix64, every: usize| every != 0 && g.below(every) == 0;
    for level in 0..cfg.depth {
        let at = *spine.last().expect("spine non-empty");
        if hit(&mut g, cfg.payload_every) {
            doc.add_child(at, NodeData::text(format!("depth {level} payload")));
        }
        if hit(&mut g, cfg.sidecar_every) {
            let m = doc.add_child(at, NodeData::Element(meta));
            let n = doc.add_child(m, NodeData::Element(note));
            doc.add_child(n, NodeData::text(format!("note {}", g.below(100_000))));
        }
        spine.push(doc.add_child(at, NodeData::Element(section)));
    }
    doc.add_child(
        *spine.last().expect("spine non-empty"),
        NodeData::text("innermost"),
    );
    // Stragglers, innermost level first — the order their events arrive in
    // a pre-order stream.
    for &at in spine.iter().rev() {
        if hit(&mut g, cfg.straggler_every) {
            let t = doc.add_child(at, NodeData::Element(tail));
            doc.add_child(t, NodeData::text(format!("late {}", g.below(100_000))));
        }
    }
    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_deep() {
        let mut s1 = SymbolTable::new();
        let d1 = generate_deep(&DeepConfig::tiny(), &mut s1);
        let mut s2 = SymbolTable::new();
        let d2 = generate_deep(&DeepConfig::tiny(), &mut s2);
        let x1 = natix_xml::write_document(&d1, &s1, natix_xml::WriteOptions::compact()).unwrap();
        let x2 = natix_xml::write_document(&d2, &s2, natix_xml::WriteOptions::compact()).unwrap();
        assert_eq!(x1, x2, "generation must be deterministic in the seed");
        // The spine really is `depth` levels of nested SECTIONs.
        let mut depth = 0usize;
        let mut at = d1.root();
        while let Some(&next) = d1
            .children(at)
            .iter()
            .find(|&&c| matches!(d1.data(c), NodeData::Element(l) if s1.name(*l) == "SECTION"))
        {
            depth += 1;
            at = next;
        }
        assert_eq!(depth, DeepConfig::tiny().depth);
    }
}
