//! # natix-corpus — evaluation workloads for the NATIX reproduction
//!
//! The paper's evaluation (§4.1) uses "an XML markup version of
//! Shakespeare's plays [18]. The total size of the documents is about 8 MB,
//! their tree representations contain about 320000 nodes total." That
//! corpus (Jon Bosak's markup) is not redistributable here, so this crate
//! generates a **deterministic, synthetic corpus with the same structural
//! statistics**: 37 plays of PLAY/TITLE/PERSONAE/ACT/SCENE/SPEECH/SPEAKER/
//! LINE/STAGEDIR elements, calibrated to ≈320 000 logical nodes and ≈8 MB
//! of XML text (asserted by this crate's tests). The evaluation depends
//! only on tree shape, fan-out and text lengths — not on the literary
//! content — so the substitution preserves the measured behaviour (see
//! DESIGN.md).
//!
//! The crate also provides the paper's two insertion orders (§4.3):
//!
//! * **append** — pre-order, "a 'bulkload' of or consecutive appends to a
//!   textual representation";
//! * **incremental** — breadth-first search over the *binary-tree
//!   representation* (first child = left child, next sibling = right
//!   child, Knuth vol. 1 §2.3.2), "resulting in an incremental update
//!   pattern where inserts occur distributed over the whole document".

pub mod deep;
pub mod orders;
pub mod prng;
pub mod purchase;
pub mod shakespeare;
pub mod words;

pub use deep::{generate_deep, DeepConfig};
pub use orders::{append_order, incremental_order, Anchor, InsertStep};
pub use prng::SplitMix64;
pub use purchase::{generate_orders, OrdersConfig};
pub use shakespeare::{generate_corpus, generate_play, CorpusConfig, CorpusStats, PlayDoc};

#[cfg(test)]
mod tests {
    use super::*;
    use natix_xml::SymbolTable;

    #[test]
    fn corpus_matches_paper_statistics() {
        let mut syms = SymbolTable::new();
        let cfg = CorpusConfig::paper();
        let plays = generate_corpus(&cfg, &mut syms);
        assert_eq!(plays.len(), 37);
        let nodes: usize = plays.iter().map(|p| p.doc.node_count()).sum();
        let bytes: usize = plays
            .iter()
            .map(|p| {
                natix_xml::write_document(&p.doc, &syms, natix_xml::WriteOptions::compact())
                    .unwrap()
                    .len()
            })
            .sum();
        // §4.1: "about 8 MB", "about 320000 nodes total".
        assert!(
            (300_000..=340_000).contains(&nodes),
            "node count {nodes} outside the paper's ≈320k"
        );
        assert!(
            (7_400_000..=8_600_000).contains(&bytes),
            "corpus size {bytes} outside the paper's ≈8 MB"
        );
    }
}
