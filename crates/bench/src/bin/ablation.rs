//! Ablations over the split algorithm's configuration parameters — §6 of
//! the paper names "studying and extending the effect of configuration
//! parameters on the splitting algorithm" as future work; this binary does
//! a first pass:
//!
//! * **split target** sweep (¼, ⅓, ½, ⅔, ¾): the L/R balance knob; the
//!   paper suggests small R partitions "to prevent degeneration of the
//!   tree if insertion is mainly on the right side" (pre-order appends);
//! * **split tolerance** sweep (2 %, 5 %, 10 %, 20 % of the page):
//!   fragmentation vs separator quality;
//! * **merge extension** on/off under a delete-heavy workload;
//! * **buffer size** sweep for the incremental build (thrash threshold).
//!
//! ```sh
//! cargo run --release -p natix-bench --bin ablation
//! ```

use natix::{Repository, RepositoryOptions, SplitMatrix, TreeConfig};
use natix_bench::{build_repo, Mode, Order};
use natix_corpus::{generate_play, CorpusConfig};
use natix_tree::InsertPos;

fn corpus() -> CorpusConfig {
    CorpusConfig {
        plays: 4,
        scale: 0.5,
        ..CorpusConfig::paper()
    }
}

fn build_with_config(config: TreeConfig) -> Repository {
    let repo = Repository::create_in_memory(RepositoryOptions {
        page_size: 4096,
        tree_config: config,
        ..RepositoryOptions::paper(4096)
    })
    .expect("create repository");
    let cfg = corpus();
    for i in 0..cfg.plays {
        let play = generate_play(&cfg, i, &mut repo.symbols_mut());
        // Per-node path: the split target/tolerance under ablation are
        // parameters of the incremental split planner — the bulkloader
        // does not consult them, so sweeping it would measure nothing.
        repo.put_document_per_node(&play.name, &play.doc)
            .expect("store play");
    }
    repo
}

fn summarise(repo: &Repository) -> (usize, usize, usize, usize) {
    let mut records = 0;
    let mut bytes = 0;
    let mut helpers = 0;
    let mut depth = 0;
    for name in repo.document_names() {
        let s = repo.physical_stats(&name).expect("valid tree");
        records += s.records;
        bytes += s.record_bytes;
        helpers += s.scaffolding_aggregates;
        depth = depth.max(s.record_depth);
    }
    (records, bytes, helpers, depth)
}

fn main() {
    println!("== split target sweep (pre-order build, 4K pages) ==");
    println!(
        "{:>8} {:>9} {:>10} {:>9} {:>6}",
        "target", "records", "bytes", "helpers", "depth"
    );
    for target in [0.25, 0.33, 0.5, 0.67, 0.75] {
        let repo = build_with_config(TreeConfig {
            split_target: target,
            ..TreeConfig::paper()
        });
        let (r, b, h, d) = summarise(&repo);
        println!("{target:>8.2} {r:>9} {b:>10} {h:>9} {d:>6}");
    }

    println!("\n== split tolerance sweep (pre-order build, 4K pages) ==");
    println!(
        "{:>8} {:>9} {:>10} {:>9} {:>6}",
        "tol", "records", "bytes", "helpers", "depth"
    );
    for tol in [0.02, 0.05, 0.1, 0.2] {
        let repo = build_with_config(TreeConfig {
            split_tolerance: tol,
            ..TreeConfig::paper()
        });
        let (r, b, h, d) = summarise(&repo);
        println!("{tol:>8.2} {r:>9} {b:>10} {h:>9} {d:>6}");
    }

    println!("\n== merge extension under churn (2K pages) ==");
    for merge in [false, true] {
        let repo = Repository::create_in_memory(RepositoryOptions {
            page_size: 2048,
            tree_config: TreeConfig {
                merge_enabled: merge,
                ..TreeConfig::paper()
            },
            matrix: SplitMatrix::all_other(),
            ..RepositoryOptions::default()
        })
        .expect("create");
        let id = repo.create_document("doc", "root").expect("doc");
        let root = repo.root(id).expect("root");
        let mut kids = Vec::new();
        for i in 0..400 {
            let e = repo
                .insert_element(id, root, InsertPos::Last, "item")
                .expect("insert");
            repo.insert_text(
                id,
                e,
                InsertPos::Last,
                &format!("payload {i} {}", "x".repeat(20)),
            )
            .expect("text");
            kids.push(e);
        }
        let before = repo.physical_stats("doc").expect("stats").records;
        for &k in kids.iter().skip(10) {
            repo.delete_node(id, k).expect("delete");
        }
        let after = repo.physical_stats("doc").expect("stats").records;
        println!("merge={merge:<5}  records before delete: {before:>4}, after: {after:>4}");
    }

    println!("\n== buffer size sweep (per-node pre-order build, 2K pages, 1:n, sim-disk ms) ==");
    // The paper fixes 2 MB. A pre-order build has near-perfect locality,
    // so the flat result is itself the finding: clustering makes the
    // incremental build insensitive to buffer size.
    for buffer_kb in [256usize, 512, 1024, 2048, 4096] {
        let cfg = corpus();
        // Reuse the harness but override the buffer via a bespoke build.
        let repo = Repository::create_in_memory(RepositoryOptions {
            buffer_bytes: buffer_kb * 1024,
            ..RepositoryOptions::paper(2048)
        })
        .expect("create");
        let mut sim_ms = 0.0;
        for i in 0..cfg.plays {
            let play = generate_play(&cfg, i, &mut repo.symbols_mut());
            repo.clear_buffer().expect("clear");
            let before = repo.io_stats().snapshot();
            repo.put_document_per_node(&play.name, &play.doc)
                .expect("store");
            repo.storage().buffer().flush_all().expect("flush");
            sim_ms += repo.io_stats().snapshot().since(&before).sim_disk_ms();
        }
        println!("buffer {buffer_kb:>5} KB: {sim_ms:>10.1} ms");
    }

    // Sanity cross-check against the figure harness (one cell).
    let built = build_repo(4096, Mode::Native, Order::Append, &corpus()).expect("harness");
    println!(
        "\nharness cross-check (native append @4K): insertion {:.1} ms over {} plays",
        built.insertion.sim_ms,
        built.doc_ids.len()
    );
}
