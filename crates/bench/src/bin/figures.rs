//! Regenerates the paper's figures 9–14 (§4).
//!
//! ```text
//! figures [--quick] [--scale F] [--fig N]... [--csv PATH]
//! ```
//!
//! * `--quick`     3 page sizes and a reduced corpus (CI-friendly);
//! * `--scale F`   corpus scale factor (1.0 = the paper's ≈320k nodes);
//! * `--fig N`     only figure N (repeatable; default: all);
//! * `--csv PATH`  also dump raw measurements as CSV.
//!
//! Output: one table per figure — rows are page sizes, columns the four
//! series of the paper's legends — in simulated-disk milliseconds (space in
//! bytes for figure 14).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use natix_bench::{build_repo, page_sizes, BuiltRepo, Measurement, Mode, Order, SERIES};
use natix_corpus::CorpusConfig;

struct Args {
    quick: bool,
    scale: f64,
    figs: Vec<u32>,
    csv: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        scale: 1.0,
        figs: Vec::new(),
        csv: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--scale" => {
                args.scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a number"))
            }
            "--fig" => {
                let f = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--fig needs a figure number"));
                if !(9..=14).contains(&f) {
                    die("figure must be 9..=14")
                }
                args.figs.push(f);
            }
            "--csv" => args.csv = Some(it.next().unwrap_or_else(|| die("--csv needs a path"))),
            "--help" | "-h" => {
                println!("usage: figures [--quick] [--scale F] [--fig N]... [--csv PATH]");
                std::process::exit(0);
            }
            other => die(&format!("unknown argument '{other}'")),
        }
    }
    if args.figs.is_empty() {
        args.figs = vec![9, 10, 11, 12, 13, 14];
    }
    args
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// Key: (figure, series label, page size) → (value, wall-clock ms).
type Results = BTreeMap<(u32, String, usize), (f64, f64)>;

fn series_label(mode: Mode, order: Order) -> String {
    format!("Record:Node {}, {}", mode.label(), order.label())
}

fn record(results: &mut Results, fig: u32, label: &str, page: usize, m: &Measurement) {
    results.insert((fig, label.to_string(), page), (m.sim_ms, m.wall_ms));
}

fn main() {
    let args = parse_args();
    let corpus = CorpusConfig {
        scale: if args.quick { 0.15 } else { args.scale },
        plays: if args.quick { 6 } else { 37 },
        ..CorpusConfig::paper()
    };
    let pages = page_sizes(args.quick);
    let mut results: Results = BTreeMap::new();

    eprintln!(
        "natix figures: corpus = {} plays, scale {}, page sizes {:?}",
        corpus.plays, corpus.scale, pages
    );
    for &page in &pages {
        for (mode, order) in SERIES {
            let label = series_label(mode, order);
            eprint!("  building {label} @ {page} ... ");
            let t0 = std::time::Instant::now();
            let mut built: BuiltRepo =
                build_repo(page, mode, order, &corpus).expect("corpus build");
            eprintln!("done in {:.1}s (wall)", t0.elapsed().as_secs_f64());
            record(&mut results, 9, &label, page, &built.insertion);
            if args.figs.contains(&10) {
                let m = built.full_traversal().expect("traversal");
                record(&mut results, 10, &label, page, &m);
            }
            if args.figs.contains(&11) {
                let m = built.query1().expect("query 1");
                record(&mut results, 11, &label, page, &m);
            }
            if args.figs.contains(&12) {
                let m = built.query2().expect("query 2");
                record(&mut results, 12, &label, page, &m);
            }
            if args.figs.contains(&13) {
                let m = built.query3().expect("query 3");
                record(&mut results, 13, &label, page, &m);
            }
            if args.figs.contains(&14) {
                results.insert((14, label.clone(), page), (built.space_bytes() as f64, 0.0));
            }
        }
    }

    let titles: BTreeMap<u32, &str> = BTreeMap::from([
        (9u32, "Figure 9: Insertion (ms, simulated disk)"),
        (10, "Figure 10: Full tree traversal (ms)"),
        (
            11,
            "Figure 11: Query 1 — selection on leaf nodes of a subtree (ms)",
        ),
        (12, "Figure 12: Query 2 — small contiguous fragments (ms)"),
        (13, "Figure 13: Query 3 — single path per document (ms)"),
        (14, "Figure 14: Space requirements (bytes on disk)"),
    ]);
    let labels: Vec<String> = SERIES.iter().map(|&(m, o)| series_label(m, o)).collect();

    let mut out = String::new();
    for &fig in &args.figs {
        writeln!(out, "\n{}", titles[&fig]).unwrap();
        write!(out, "{:>10}", "page").unwrap();
        for l in &labels {
            write!(out, "  {l:>28}").unwrap();
        }
        writeln!(out).unwrap();
        for &page in &pages {
            write!(out, "{page:>10}").unwrap();
            for l in &labels {
                match results.get(&(fig, l.clone(), page)) {
                    Some((v, _)) if fig == 14 => write!(out, "  {v:>28.0}").unwrap(),
                    Some((v, _)) => write!(out, "  {v:>28.1}").unwrap(),
                    None => write!(out, "  {:>28}", "-").unwrap(),
                }
            }
            writeln!(out).unwrap();
        }
    }
    println!("{out}");

    if let Some(path) = args.csv {
        let mut csv = String::from("figure,series,page_size,value,wall_ms\n");
        for ((fig, label, page), (v, w)) in &results {
            writeln!(csv, "{fig},{label},{page},{v},{w:.1}").unwrap();
        }
        std::fs::write(&path, csv).expect("write csv");
        eprintln!("wrote {path}");
    }
}
