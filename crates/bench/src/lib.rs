//! # natix-bench — the evaluation harness (paper §4)
//!
//! Reproduces every figure of the paper's performance section:
//!
//! | Figure | Operation |
//! |--------|-----------|
//! | 9  | Insertion (append = pre-order bulkload; incremental = binary-tree BFS) |
//! | 10 | Full pre-order tree traversal |
//! | 11 | Query 1 — all SPEAKERs in act 3, scene 2 of every play |
//! | 12 | Query 2 — textual representation of the first SPEECH of every scene |
//! | 13 | Query 3 — the opening SPEECH of every play |
//! | 14 | Space requirements (bytes on disk) |
//!
//! Methodology (§4.2): four series — {1:1, 1:n (native)} × {incremental,
//! append} — over a page-size sweep; split target ½; split tolerance ⅒ of
//! a page; 2 MB buffer, cleared before every measured operation. Times are
//! the simulated-disk milliseconds of the DCAS 34330W model
//! ([`natix::DiskProfile::dcas_34330w`]); see DESIGN.md for why wall-clock
//! on modern hardware cannot reproduce the paper's numbers while the model
//! reproduces their shape.

use natix::{DocId, NatixResult, PathQuery, Repository, RepositoryOptions, SplitMatrix};
use natix_corpus::{generate_play, incremental_order, Anchor, CorpusConfig, PlayDoc};
use natix_tree::{InsertPos, NewNode};
use natix_xml::{Document, NodeData, NodeIdx};

/// Storage configuration axis: the paper's two measured configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// "Record:Node 1:1" — split matrix all 0 (record per node).
    OneToOne,
    /// "Record:Node 1:n" — the native configuration (all *other*).
    Native,
}

impl Mode {
    /// Series label as printed in the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            Mode::OneToOne => "1:1",
            Mode::Native => "1:n",
        }
    }

    fn matrix(self) -> SplitMatrix {
        match self {
            Mode::OneToOne => SplitMatrix::all_standalone(),
            Mode::Native => SplitMatrix::all_other(),
        }
    }
}

/// Insertion-order axis (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Order {
    /// Pre-order bulkload ("Append").
    Append,
    /// Binary-tree BFS ("Incremental Updates").
    Incremental,
}

impl Order {
    /// Series label as printed in the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            Order::Append => "Append",
            Order::Incremental => "Incremental Updates",
        }
    }
}

/// One measurement of one operation.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Simulated disk time, milliseconds (the unit of the paper's plots).
    pub sim_ms: f64,
    /// Wall-clock milliseconds of this implementation (supplementary: the
    /// paper's 1999 insertion numbers include CPU page-work that a disk
    /// model alone does not capture; see EXPERIMENTS.md).
    pub wall_ms: f64,
    pub physical_reads: u64,
    pub physical_writes: u64,
    pub seeks: u64,
}

/// A repository populated with the corpus under one configuration.
pub struct BuiltRepo {
    pub repo: Repository,
    pub doc_ids: Vec<DocId>,
    pub mode: Mode,
    pub order: Order,
    pub page_size: usize,
    /// Insertion cost (Figure 9), measured during the build.
    pub insertion: Measurement,
}

fn measure<T>(
    repo: &Repository,
    f: impl FnOnce() -> NatixResult<T>,
) -> NatixResult<(T, Measurement)> {
    repo.clear_buffer()?;
    let before = repo.io_stats().snapshot();
    let t0 = std::time::Instant::now();
    let value = f()?;
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let after = repo.io_stats().snapshot();
    let d = after.since(&before);
    Ok((
        value,
        Measurement {
            sim_ms: d.sim_disk_ms(),
            wall_ms,
            physical_reads: d.physical_reads,
            physical_writes: d.physical_writes,
            seeks: d.sim_seeks,
        },
    ))
}

/// Inserts one play node by node in the given order, through the public
/// node-level API (exactly the paper's §4.3 storage operation).
fn insert_play(repo: &mut Repository, play: &PlayDoc, order: Order) -> NatixResult<DocId> {
    let doc = &play.doc;
    let NodeData::Element(root_label) = doc.data(doc.root()) else {
        unreachable!("plays are element-rooted")
    };
    let root_name = repo.symbols().name(*root_label).to_string();
    let id = repo.create_document(&play.name, &root_name)?;
    let mut ids: Vec<Option<natix::NodeId>> = vec![None; doc.node_count()];
    ids[doc.root() as usize] = Some(repo.root(id)?);
    let payload = |doc: &Document, n: NodeIdx| match doc.data(n) {
        NodeData::Element(l) => (*l, NewNode::Element),
        NodeData::Literal { label, value } => (*label, NewNode::Literal(value.clone())),
    };
    match order {
        Order::Append => {
            for n in doc.pre_order() {
                let Some(parent) = doc.parent(n) else {
                    continue;
                };
                let parent_id = ids[parent as usize].expect("pre-order: parent inserted");
                let (label, node) = payload(doc, n);
                let new = repo.insert_node(id, parent_id, InsertPos::Last, label, node)?;
                ids[n as usize] = Some(new);
            }
        }
        Order::Incremental => {
            for step in incremental_order(doc) {
                let (label, node) = payload(doc, step.node);
                let new = match step.anchor {
                    Anchor::FirstChildOf(p) => {
                        let pid = ids[p as usize].expect("BFS: anchor inserted");
                        repo.insert_node(id, pid, InsertPos::First, label, node)?
                    }
                    Anchor::After(s) => {
                        let sid = ids[s as usize].expect("BFS: anchor inserted");
                        repo.insert_node_after(id, sid, label, node)?
                    }
                    Anchor::LastChildOf(p) => {
                        let pid = ids[p as usize].expect("anchor inserted");
                        repo.insert_node(id, pid, InsertPos::Last, label, node)?
                    }
                };
                ids[step.node as usize] = Some(new);
            }
        }
    }
    Ok(id)
}

/// Builds a repository with the corpus under one configuration, measuring
/// the total insertion cost (Figure 9). The buffer is cleared before each
/// document's insertion (§4.2).
pub fn build_repo(
    page_size: usize,
    mode: Mode,
    order: Order,
    corpus: &CorpusConfig,
) -> NatixResult<BuiltRepo> {
    let options = RepositoryOptions {
        matrix: mode.matrix(),
        ..RepositoryOptions::paper(page_size)
    };
    let mut repo = Repository::create_in_memory(options)?;
    let mut doc_ids = Vec::with_capacity(corpus.plays);
    let mut total = Measurement {
        sim_ms: 0.0,
        wall_ms: 0.0,
        physical_reads: 0,
        physical_writes: 0,
        seeks: 0,
    };
    for i in 0..corpus.plays {
        let play = generate_play(corpus, i, &mut repo.symbols_mut());
        repo.clear_buffer()?;
        let before = repo.io_stats().snapshot();
        let t0 = std::time::Instant::now();
        let id = insert_play(&mut repo, &play, order)?;
        // Include the final write-back of dirty pages in the cost.
        repo.storage().buffer().flush_all()?;
        total.wall_ms += t0.elapsed().as_secs_f64() * 1e3;
        let d = repo.io_stats().snapshot().since(&before);
        total.sim_ms += d.sim_disk_ms();
        total.physical_reads += d.physical_reads;
        total.physical_writes += d.physical_writes;
        total.seeks += d.sim_seeks;
        doc_ids.push(id);
    }
    Ok(BuiltRepo {
        repo,
        doc_ids,
        mode,
        order,
        page_size,
        insertion: total,
    })
}

impl BuiltRepo {
    /// Figure 10: full pre-order traversal of every document.
    pub fn full_traversal(&mut self) -> NatixResult<Measurement> {
        let ids = self.doc_ids.clone();
        let repo = &mut self.repo;
        let (count, m) = measure(repo, || {
            let mut nodes = 0usize;
            for &id in &ids {
                repo.traverse_document(id, |_, _| nodes += 1)?;
            }
            Ok(nodes)
        })?;
        assert!(count > 0);
        Ok(m)
    }

    /// Figure 11 (Query 1): all SPEAKER leaves in act 3, scene 2 of every
    /// play.
    pub fn query1(&mut self) -> NatixResult<Measurement> {
        let q = PathQuery::parse("/PLAY/ACT[3]/SCENE[2]//SPEAKER").expect("static query parses");
        let ids = self.doc_ids.clone();
        self.repo.clear_buffer()?;
        let before = self.repo.io_stats().snapshot();
        let t0 = std::time::Instant::now();
        let mut hits = 0usize;
        for &id in &ids {
            let speakers = self.repo.query_parsed(id, &q)?;
            for s in speakers {
                let _ = self.repo.text_content(id, s)?;
                hits += 1;
            }
        }
        let d = self.repo.io_stats().snapshot().since(&before);
        assert!(hits > 0, "query 1 must match something");
        Ok(Measurement {
            sim_ms: d.sim_disk_ms(),
            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            physical_reads: d.physical_reads,
            physical_writes: d.physical_writes,
            seeks: d.sim_seeks,
        })
    }

    /// Figure 12 (Query 2): recreate the text of the first speech of every
    /// scene.
    pub fn query2(&mut self) -> NatixResult<Measurement> {
        let q = PathQuery::parse("/PLAY/ACT/SCENE/SPEECH[1]").expect("static query parses");
        let ids = self.doc_ids.clone();
        self.repo.clear_buffer()?;
        let before = self.repo.io_stats().snapshot();
        let t0 = std::time::Instant::now();
        let mut bytes = 0usize;
        for &id in &ids {
            for speech in self.repo.query_parsed(id, &q)? {
                bytes += self.repo.serialize_node(id, speech)?.len();
            }
        }
        let d = self.repo.io_stats().snapshot().since(&before);
        assert!(bytes > 0);
        Ok(Measurement {
            sim_ms: d.sim_disk_ms(),
            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            physical_reads: d.physical_reads,
            physical_writes: d.physical_writes,
            seeks: d.sim_seeks,
        })
    }

    /// Figure 13 (Query 3): read the opening speech of each play.
    pub fn query3(&mut self) -> NatixResult<Measurement> {
        let q = PathQuery::parse("/PLAY/ACT[1]/SCENE[1]/SPEECH[1]").expect("static query parses");
        let ids = self.doc_ids.clone();
        self.repo.clear_buffer()?;
        let before = self.repo.io_stats().snapshot();
        let t0 = std::time::Instant::now();
        let mut bytes = 0usize;
        for &id in &ids {
            for speech in self.repo.query_parsed(id, &q)? {
                bytes += self.repo.serialize_node(id, speech)?.len();
            }
        }
        let d = self.repo.io_stats().snapshot().since(&before);
        assert!(bytes > 0);
        Ok(Measurement {
            sim_ms: d.sim_disk_ms(),
            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            physical_reads: d.physical_reads,
            physical_writes: d.physical_writes,
            seeks: d.sim_seeks,
        })
    }

    /// Figure 14: bytes on disk used by the document segment.
    pub fn space_bytes(&self) -> u64 {
        let seg = self.repo.tree_store().segment();
        let pages = self.repo.storage().segment_pages(seg).len() as u64;
        pages * self.page_size as u64
    }

    /// Physical statistics over all documents (sanity + analysis).
    pub fn physical_summary(&self) -> NatixResult<natix_tree::PhysicalStats> {
        let mut total = natix_tree::PhysicalStats::default();
        for name in self.repo.document_names() {
            let s = self.repo.physical_stats(&name)?;
            total.records += s.records;
            total.facade_nodes += s.facade_nodes;
            total.scaffolding_aggregates += s.scaffolding_aggregates;
            total.proxies += s.proxies;
            total.record_bytes += s.record_bytes;
            total.record_depth = total.record_depth.max(s.record_depth);
            total.pages += s.pages;
        }
        Ok(total)
    }
}

/// The four series of every figure, in the paper's legend order.
pub const SERIES: [(Mode, Order); 4] = [
    (Mode::OneToOne, Order::Incremental),
    (Mode::Native, Order::Incremental),
    (Mode::OneToOne, Order::Append),
    (Mode::Native, Order::Append),
];

/// The paper's page-size sweep (2K–32K).
pub fn page_sizes(quick: bool) -> Vec<usize> {
    if quick {
        vec![2048, 8192, 32768]
    } else {
        vec![2048, 4096, 8192, 16384, 32768]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CorpusConfig {
        CorpusConfig {
            plays: 2,
            scale: 0.08,
            ..CorpusConfig::tiny()
        }
    }

    #[test]
    fn build_and_measure_all_figures_tiny() {
        for (mode, order) in SERIES {
            let mut built = build_repo(2048, mode, order, &tiny()).unwrap();
            assert!(built.insertion.sim_ms > 0.0, "insertion cost measured");
            let t = built.full_traversal().unwrap();
            assert!(t.sim_ms > 0.0);
            let q1 = built.query1().unwrap();
            let q2 = built.query2().unwrap();
            let q3 = built.query3().unwrap();
            assert!(q1.sim_ms > 0.0 && q2.sim_ms > 0.0 && q3.sim_ms > 0.0);
            assert!(built.space_bytes() > 0);
            // All documents stay structurally valid under both modes.
            built.physical_summary().unwrap();
        }
    }

    #[test]
    fn one_to_one_uses_more_space_than_native() {
        let native = build_repo(8192, Mode::Native, Order::Append, &tiny()).unwrap();
        let one2one = build_repo(8192, Mode::OneToOne, Order::Append, &tiny()).unwrap();
        let ns = native.physical_summary().unwrap();
        let os = one2one.physical_summary().unwrap();
        assert!(
            os.record_bytes > ns.record_bytes,
            "per-node records carry more overhead: 1:1={} vs 1:n={}",
            os.record_bytes,
            ns.record_bytes
        );
        assert!(os.records > 10 * ns.records);
    }

    #[test]
    fn both_orders_store_identical_documents() {
        let mut a = build_repo(2048, Mode::Native, Order::Append, &tiny()).unwrap();
        let mut b = build_repo(2048, Mode::Native, Order::Incremental, &tiny()).unwrap();
        let names = a.repo.document_names();
        assert_eq!(names, b.repo.document_names());
        for n in names {
            assert_eq!(
                a.repo.get_xml(&n).unwrap(),
                b.repo.get_xml(&n).unwrap(),
                "insertion order must not change the logical document"
            );
        }
        let _ = (a.full_traversal().unwrap(), b.full_traversal().unwrap());
    }
}
