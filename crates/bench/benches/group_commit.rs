//! Group-commit benchmark: durable ingest throughput, per-commit fsync
//! versus a shared group-commit window, across writer counts.
//!
//! ```sh
//! cargo bench -p natix-bench --bench group_commit             # writes BENCH_group_commit.json
//! cargo bench -p natix-bench --bench group_commit -- --check  # CI mode: asserts the amortisation floor
//! ```
//!
//! Every acknowledged `put_xml` is durable: the commit's log records are
//! fsynced before the call returns. Under [`WalSyncMode::PerCommit`] each
//! committer pays the full fsync itself; under [`WalSyncMode::Group`]
//! concurrent committers share one — the leader syncs to the end of the
//! log, followers piggyback on LSN watermarks. With W writers and an
//! fsync that costs ~2 ms, per-commit throughput is capped near
//! 1/fsync regardless of W, while group commit should approach W
//! commits per fsync. That ratio — group over per-commit at the same
//! writer count — is what this benchmark measures, on a log device whose
//! sync sleeps a realistic latency and a throttled page store (so page
//! I/O is not free either, as in the other concurrency benches).
//!
//! Check mode fails the build when group commit at 4 writers falls below
//! **1.5×** the per-commit throughput at 4 writers.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use natix::{Repository, RepositoryOptions};
use natix_corpus::{generate_orders, OrdersConfig};
use natix_storage::wal::MemLogDevice;
use natix_storage::{DiskBackend, MemStorage, ThrottledDisk, WalSyncMode};
use natix_xml::{SymbolTable, WriteOptions};

const PAGE_SIZE: usize = 8192;
const BUFFER_FRAMES: usize = 48;
/// Page latencies: an order of magnitude below the fsync, so the log
/// force — not page I/O — is the cost being amortised.
const READ_LATENCY_US: u64 = 150;
const WRITE_LATENCY_US: u64 = 300;
/// What one log fsync costs (the order of a commodity disk flush).
const FSYNC_LATENCY_MS: u64 = 2;
const WRITER_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Repetitions per cell; the fastest run is reported.
const REPS: usize = 3;
/// Acceptance floor asserted in `--check` mode: group-commit throughput
/// over per-commit throughput at 4 writers.
const GROUP_GAIN_FLOOR_AT_4: f64 = 1.5;

struct Run {
    writers: usize,
    wall_ms: f64,
    docs_per_s: f64,
    identical: bool,
}

struct ModeRows {
    mode: &'static str,
    runs: Vec<Run>,
}

/// Many small documents: each commit is a handful of pages, so the
/// fsync dominates and the group-commit window has committers to batch.
fn order_docs(quick: bool) -> Vec<(String, String)> {
    let count = if quick { 24 } else { 48 };
    let mut syms = SymbolTable::new();
    (0..count)
        .map(|i| {
            let doc = generate_orders(
                &OrdersConfig {
                    orders: 6,
                    seed: 0x6C0_77E0 ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15),
                },
                &mut syms,
            );
            let xml = natix_xml::write_document(&doc, &syms, WriteOptions::compact()).unwrap();
            (format!("order-batch-{i}"), xml)
        })
        .collect()
}

fn durable_repo(mode: WalSyncMode) -> Repository {
    let backend = Arc::new(
        ThrottledDisk::new(
            MemStorage::new(PAGE_SIZE).unwrap(),
            READ_LATENCY_US,
            WRITE_LATENCY_US,
        )
        .with_sync_latency(1_000),
    ) as Arc<dyn DiskBackend>;
    let log =
        Box::new(MemLogDevice::new().with_sync_latency(Duration::from_millis(FSYNC_LATENCY_MS)));
    Repository::create_on_backend_with_log(
        backend,
        log,
        RepositoryOptions {
            page_size: PAGE_SIZE,
            buffer_bytes: BUFFER_FRAMES * PAGE_SIZE,
            durability: Some(mode),
            ..RepositoryOptions::default()
        },
    )
    .unwrap()
}

/// W writer threads pull documents from a shared queue; every `put_xml`
/// returns only after its commit is durable. Wall time covers the whole
/// batch; byte-identity is verified outside the window.
fn bench_mode(mode: WalSyncMode, label: &'static str, docs: &[(String, String)]) -> ModeRows {
    let mut runs = Vec::new();
    for &writers in &WRITER_COUNTS {
        let mut wall_ms = f64::INFINITY;
        let mut identical = true;
        for _ in 0..REPS {
            let repo = Arc::new(durable_repo(mode));
            let next = AtomicUsize::new(0);
            let t0 = Instant::now();
            std::thread::scope(|s| {
                for _ in 0..writers {
                    s.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some((name, xml)) = docs.get(i) else {
                            break;
                        };
                        repo.put_xml(name, xml).unwrap();
                    });
                }
            });
            let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
            wall_ms = wall_ms.min(elapsed_ms);
            identical &= docs
                .iter()
                .all(|(name, xml)| &repo.get_xml(name).unwrap() == xml);
        }
        runs.push(Run {
            writers,
            wall_ms,
            docs_per_s: docs.len() as f64 / (wall_ms / 1e3),
            identical,
        });
        let r = runs.last().unwrap();
        println!(
            "  {label:<10} {writers} writer(s): {:>8.1} ms  {:>7.1} docs/s  identical: {}",
            r.wall_ms, r.docs_per_s, r.identical
        );
    }
    ModeRows { mode: label, runs }
}

fn write_json(quick: bool, all: &[ModeRows], docs: usize, gain_at_4: f64) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(
        s,
        "  \"benchmark\": \"group commit (durable ingest, per-commit vs shared fsync)\","
    );
    let _ = writeln!(s, "  \"page_size\": {PAGE_SIZE},");
    let _ = writeln!(s, "  \"buffer_frames\": {BUFFER_FRAMES},");
    let _ = writeln!(
        s,
        "  \"disk\": \"throttled: {READ_LATENCY_US} us/page read, \
         {WRITE_LATENCY_US} us/page write, 1 ms page-store sync\","
    );
    let _ = writeln!(s, "  \"log_fsync_ms\": {FSYNC_LATENCY_MS},");
    let _ = writeln!(s, "  \"documents\": {docs},");
    let _ = writeln!(s, "  \"quick_mode\": {quick},");
    let _ = writeln!(s, "  \"group_gain_at_4_writers\": {gain_at_4:.2},");
    s.push_str("  \"modes\": [\n");
    for (i, m) in all.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"mode\": \"{}\",", m.mode);
        s.push_str("      \"runs\": [\n");
        for (j, r) in m.runs.iter().enumerate() {
            let _ = writeln!(
                s,
                "        {{\"writers\": {}, \"wall_ms\": {:.1}, \
                 \"docs_per_s\": {:.2}, \"identical_get_xml\": {}}}{}",
                r.writers,
                r.wall_ms,
                r.docs_per_s,
                r.identical,
                if j + 1 < m.runs.len() { "," } else { "" }
            );
        }
        s.push_str("      ]\n");
        let _ = writeln!(s, "    }}{}", if i + 1 < all.len() { "," } else { "" });
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--check" || a == "--quick");
    let skip_json = args.iter().any(|a| a == "--check");

    println!(
        "group commit ({PAGE_SIZE} B pages, {BUFFER_FRAMES}-frame pool, \
         {FSYNC_LATENCY_MS} ms log fsync{}):",
        if quick { ", quick" } else { "" }
    );
    let docs = order_docs(quick);
    let all = [
        bench_mode(WalSyncMode::PerCommit, "per-commit", &docs),
        bench_mode(WalSyncMode::Group, "group", &docs),
    ];

    for m in &all {
        for r in &m.runs {
            assert!(
                r.identical,
                "{} mode, {} writer(s): a document does not read back byte-identical",
                m.mode, r.writers
            );
        }
    }
    let per_commit = &all[0];
    let group = &all[1];
    let at4 = |m: &ModeRows| m.runs.iter().find(|r| r.writers == 4).unwrap().docs_per_s;
    let gain_at_4 = at4(group) / at4(per_commit);
    if skip_json {
        assert!(
            gain_at_4 >= GROUP_GAIN_FLOOR_AT_4,
            "group commit at 4 writers is only {gain_at_4:.2}x per-commit \
             throughput, below the {GROUP_GAIN_FLOOR_AT_4}x acceptance floor",
        );
        println!(
            "check mode: group/per-commit at 4 writers = {gain_at_4:.2}x \
             (floor {GROUP_GAIN_FLOOR_AT_4}x)"
        );
    } else {
        let json = write_json(quick, &all, docs.len(), gain_at_4);
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_group_commit.json");
        std::fs::write(path, &json).unwrap();
        println!("wrote {path}");
        println!("group/per-commit at 4 writers: {gain_at_4:.2}x (floor {GROUP_GAIN_FLOOR_AT_4}x)");
    }
}
