//! Cost-based planner benchmark: summary answers vs record scans.
//!
//! ```sh
//! cargo bench -p natix-bench --bench planner             # writes BENCH_planner.json
//! cargo bench -p natix-bench --bench planner -- --check  # CI mode: asserts the floors
//! ```
//!
//! The corpus is one catalog document shaped for plan divergence: dozens
//! of fat `BULK` sections of filler records **directly under the root**
//! (a high-fanout root — proxy label digests let the seeded descent
//! prune each one without a page read), with a handful of small `RARE`
//! sections after them. Over the throttled disk (8 KB pages, a pool far
//! smaller than the document, a per-page read latency in the paper's
//! late-90s ballpark) the plan families separate cleanly:
//!
//! * **structural counts** (`//FILLER`, `//DATA/text()`, `//*`) — the
//!   planner answers from the path summary without touching a page; the
//!   baseline is the same count through a forced parallel record scan.
//!   Check floor: **10x**.
//! * **selective node queries** (`//RARE/NEEDLE`, `//NEEDLE`) —
//!   the summary-seeded descent enters only subtrees on the match
//!   closure's paths; the baseline is the unseeded 4-thread parallel
//!   scan of the whole document. Check floor: **2x**.
//! * **digest ablation** (same selective queries) — the seeded descent
//!   with proxy label digests vs the same forced descent on a repository
//!   bulkloaded with `TreeConfig::proxy_digests = false`, where every
//!   root child costs one page read just to learn its label. Check
//!   floor: **1.5x** (the high-fanout root makes it far higher).
//!
//! Every timed pair is also compared for bit-identical results (counts
//! and node-id lists alike), and the planner's *unforced* choice is
//! asserted to be the summary shape — the floors pin the speedup the
//! cost model's choice actually delivers.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use natix::{ParallelQueryOptions, PlanShape, PlannerOptions, Repository, RepositoryOptions};
use natix_storage::{DiskBackend, MemStorage, ThrottledDisk};
use natix_tree::TreeConfig;

const PAGE_SIZE: usize = 8192;
/// Small on purpose: the catalog must not fit the pool, so scans stall on
/// reads while summary plans skip them entirely.
const BUFFER_FRAMES: usize = 48;
const READ_LATENCY_US: u64 = 1_500;
const WRITE_LATENCY_US: u64 = 0;
/// Repetitions per measurement; the fastest run is reported.
const REPS: usize = 3;
/// Check-mode floor: structural counts answered from the summary vs the
/// same count through a forced parallel record scan.
const COUNT_FLOOR: f64 = 10.0;
/// Check-mode floor: summary-seeded selective queries vs the unseeded
/// parallel scan at `SCAN_THREADS` threads.
const SEEDED_FLOOR: f64 = 2.0;
/// Check-mode floor: seeded descent with proxy label digests vs the same
/// descent on a digest-less repository (one page read per root child).
const DIGEST_FLOOR: f64 = 1.5;
const SCAN_THREADS: usize = 4;

const COUNT_QUERIES: &[&str] = &["//FILLER", "//DATA/text()", "//*"];
const SEEDED_QUERIES: &[&str] = &["//RARE/NEEDLE", "//NEEDLE"];

/// A catalog with a high-fanout root: 48 fat prunable `BULK` sections
/// directly under `CATALOG`, then a rare selective path. Before proxy
/// label digests, learning each root child's label cost one page read —
/// which is exactly what the digest ablation measures; with digests the
/// descent prunes all 48 sections from the root record alone.
fn corpus_xml(quick: bool) -> String {
    let sections = 48;
    let fillers = if quick { 350 } else { 700 };
    let mut s = String::from("<CATALOG>");
    for i in 0..sections {
        s.push_str("<BULK>");
        for j in 0..fillers {
            write!(
                s,
                "<FILLER><DATA>payload {i}-{j} lorem ipsum dolor sit amet</DATA></FILLER>"
            )
            .unwrap();
        }
        s.push_str("</BULK>");
    }
    for i in 0..4 {
        write!(s, "<RARE><NEEDLE>needle {i}</NEEDLE></RARE>").unwrap();
    }
    s.push_str("</CATALOG>");
    s
}

fn throttled_repo(digests: bool) -> Repository {
    let backend = Arc::new(ThrottledDisk::new(
        MemStorage::new(PAGE_SIZE).unwrap(),
        READ_LATENCY_US,
        WRITE_LATENCY_US,
    )) as Arc<dyn DiskBackend>;
    Repository::create_on_backend(
        backend,
        RepositoryOptions {
            page_size: PAGE_SIZE,
            buffer_bytes: BUFFER_FRAMES * PAGE_SIZE,
            tree_config: TreeConfig {
                proxy_digests: digests,
                ..TreeConfig::paper()
            },
            ..RepositoryOptions::default()
        },
    )
    .unwrap()
}

struct Row {
    query: &'static str,
    kind: &'static str,
    chosen_shape: String,
    summary_ms: f64,
    scan_ms: f64,
    speedup: f64,
    hits: u64,
}

/// Times `f` over `REPS` cold runs (buffer cleared each time), returning
/// the fastest wall time in milliseconds and the last result.
fn time_cold<T>(repo: &Repository, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..REPS {
        repo.clear_buffer().unwrap();
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        out = Some(r);
    }
    (best, out.unwrap())
}

fn bench(quick: bool) -> Vec<Row> {
    let repo = throttled_repo(true);
    repo.put_xml_streaming("catalog", &corpus_xml(quick))
        .unwrap();
    let scan_opts = PlannerOptions {
        force: Some(PlanShape::ParallelScan),
        exec: ParallelQueryOptions {
            threads: SCAN_THREADS,
            parallel_record_threshold: 8,
            ..Default::default()
        },
        ..PlannerOptions::default()
    };
    let mut rows = Vec::new();

    for &q in COUNT_QUERIES {
        // The unforced plan must be the summary count.
        let (n_summary, explain) = repo
            .count_planned("catalog", q, &PlannerOptions::default())
            .unwrap();
        assert_eq!(
            explain.shape,
            PlanShape::SummaryOnly,
            "{q}: the planner did not choose the summary for a structural count"
        );
        let (summary_ms, _) = time_cold(&repo, || {
            repo.count_planned("catalog", q, &PlannerOptions::default())
                .unwrap()
                .0
        });
        let (scan_ms, n_scan) = time_cold(&repo, || {
            repo.count_planned("catalog", q, &scan_opts).unwrap().0
        });
        assert_eq!(
            n_summary, n_scan,
            "{q}: summary count diverges from the scan"
        );
        let speedup = scan_ms / summary_ms;
        println!(
            "  count  {q:<22} summary {summary_ms:>8.2} ms   scan {scan_ms:>8.1} ms   {speedup:>6.1}x   ({n_summary} hits)"
        );
        rows.push(Row {
            query: q,
            kind: "structural-count",
            chosen_shape: format!("{:?}", explain.shape),
            summary_ms,
            scan_ms,
            speedup,
            hits: n_summary,
        });
    }

    for &q in SEEDED_QUERIES {
        let seeded_opts = PlannerOptions {
            force: Some(PlanShape::SummarySeeded),
            ..PlannerOptions::default()
        };
        let explain = repo
            .explain("catalog", q, &PlannerOptions::default())
            .unwrap();
        assert_eq!(
            explain.shape,
            PlanShape::SummarySeeded,
            "{q}: the planner did not choose the seeded descent for a selective query"
        );
        let (summary_ms, ids_seeded) = time_cold(&repo, || {
            repo.query_planned("catalog", q, &seeded_opts).unwrap().0
        });
        let (scan_ms, ids_scan) = time_cold(&repo, || {
            repo.query_planned("catalog", q, &scan_opts).unwrap().0
        });
        assert_eq!(
            ids_seeded, ids_scan,
            "{q}: seeded descent diverges from the parallel scan"
        );
        let speedup = scan_ms / summary_ms;
        println!(
            "  seeded {q:<22} seeded  {summary_ms:>8.2} ms   scan {scan_ms:>8.1} ms   {speedup:>6.1}x   ({} hits)",
            ids_seeded.len()
        );
        rows.push(Row {
            query: q,
            kind: "selective-seeded",
            chosen_shape: format!("{:?}", explain.shape),
            summary_ms,
            scan_ms,
            speedup,
            hits: ids_seeded.len() as u64,
        });
    }

    // Digest ablation: the identical forced seeded descent against a
    // repository whose bulkload wrote no proxy label digests — every
    // pruning decision at the high-fanout root then costs one page read
    // just to learn the child's label.
    let plain = throttled_repo(false);
    plain
        .put_xml_streaming("catalog", &corpus_xml(quick))
        .unwrap();
    for &q in SEEDED_QUERIES {
        let seeded_opts = PlannerOptions {
            force: Some(PlanShape::SummarySeeded),
            ..PlannerOptions::default()
        };
        let (digest_ms, n_digest) = time_cold(&repo, || {
            repo.count_planned("catalog", q, &seeded_opts).unwrap().0
        });
        let (plain_ms, n_plain) = time_cold(&plain, || {
            plain.count_planned("catalog", q, &seeded_opts).unwrap().0
        });
        assert_eq!(
            n_digest, n_plain,
            "{q}: digested descent diverges from the digest-less one"
        );
        let speedup = plain_ms / digest_ms;
        println!(
            "  digest {q:<22} digest  {digest_ms:>8.2} ms   none {plain_ms:>8.1} ms   {speedup:>6.1}x   ({n_digest} hits)"
        );
        rows.push(Row {
            query: q,
            kind: "seeded-digest-ablation",
            chosen_shape: "SummarySeeded".to_string(),
            summary_ms: digest_ms,
            scan_ms: plain_ms,
            speedup,
            hits: n_digest,
        });
    }
    rows
}

fn write_json(quick: bool, rows: &[Row]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(
        s,
        "  \"benchmark\": \"cost-based planner: summary plans vs record scans\","
    );
    let _ = writeln!(s, "  \"page_size\": {PAGE_SIZE},");
    let _ = writeln!(s, "  \"buffer_frames\": {BUFFER_FRAMES},");
    let _ = writeln!(
        s,
        "  \"disk\": \"throttled: {READ_LATENCY_US} us/page read, free writes\","
    );
    let _ = writeln!(s, "  \"scan_threads\": {SCAN_THREADS},");
    let _ = writeln!(s, "  \"quick_mode\": {quick},");
    s.push_str("  \"queries\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"query\": \"{}\", \"kind\": \"{}\", \"chosen_shape\": \"{}\", \
             \"plan_ms\": {:.3}, \"scan_ms\": {:.1}, \"speedup\": {:.1}, \
             \"hits\": {}, \"identical_results\": true}}{}",
            r.query,
            r.kind,
            r.chosen_shape,
            r.summary_ms,
            r.scan_ms,
            r.speedup,
            r.hits,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--check" || a == "--quick");
    let check = args.iter().any(|a| a == "--check");

    println!(
        "planner plans vs record scans ({PAGE_SIZE} B pages, {BUFFER_FRAMES}-frame pool, \
         throttled disk{}):",
        if quick { ", quick" } else { "" }
    );
    let rows = bench(quick);

    for r in &rows {
        let floor = match r.kind {
            "structural-count" => COUNT_FLOOR,
            "seeded-digest-ablation" => DIGEST_FLOOR,
            _ => SEEDED_FLOOR,
        };
        if check {
            assert!(
                r.speedup >= floor,
                "{} '{}': {:.1}x fell below the {floor}x acceptance floor",
                r.kind,
                r.query,
                r.speedup
            );
        }
        println!(
            "{} '{}': {:.1}x (floor {floor}x)",
            r.kind, r.query, r.speedup
        );
    }
    if !check {
        let json = write_json(quick, &rows);
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_planner.json");
        std::fs::write(path, &json).unwrap();
        println!("wrote {path}");
    } else {
        println!("check mode: all floors met");
    }
}
