//! Scan/cache interaction benchmark: point-lookup tail latency under a
//! concurrent full scan, per eviction policy, plus the prefetch
//! read-ahead delta on multi-threaded record-queue scans.
//!
//! ```sh
//! cargo bench -p natix-bench --bench scan_cache             # writes BENCH_scan_cache.json
//! cargo bench -p natix-bench --bench scan_cache -- --check  # CI mode: asserts the floors
//! ```
//!
//! Two documents share one throttled-disk repository: a small `hot`
//! document whose pages are the point-access working set, and a `cold`
//! catalog several times larger than the buffer pool. The benchmark
//! measures, per eviction policy (`Lru` vs `ScanResistant`):
//!
//! * **solo** — P50/P99 latency of a point lookup (`/HOT/ITEM/text()`
//!   content query) with nothing else running: the working set is
//!   resident, both policies serve hits.
//! * **under scan** — the same lookup racing a continuous forced
//!   `//MARK` parallel record scan of the cold document (one hit, so
//!   the scanner is I/O-bound, not sort-bound). Lookups are spaced by a
//!   think time longer than one pool turnover, the regime where naive
//!   LRU is pathological: between two touches of the working set the
//!   scan streams more distinct pages than the pool holds, so every
//!   lookup re-faults its pages at disk latency. Under the
//!   scan-resistant policy the scan's pages are confined to the bounded
//!   cold set and the working set survives untouched.
//!   Check floor: **scan-resistant P99 ≤ 0.5× the LRU P99**.
//! * **prefetch delta** — wall clock of a cold 4-thread record-queue
//!   scan with the read-ahead window on vs off. The throttled disk
//!   charges a batch of n pages one full service time plus (n−1)
//!   transfer shares, so overlap is honestly measurable. Check floor:
//!   **≥ 1.3×** (asserted on the LRU pool, where the window is not
//!   capped by the cold set; the scan-resistant delta is reported too).
//!
//! Every measured configuration is also checked for bit-identical
//! results: the `//*` scan count and the hot content list must agree
//! across policies and across prefetch on/off.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use natix::{
    ParallelQueryOptions, PathQuery, PlanShape, PlannerOptions, Repository, RepositoryOptions,
};
use natix_storage::buffer::EvictionPolicy;
use natix_storage::{DiskBackend, MemStorage, ThrottledDisk};

const PAGE_SIZE: usize = 8192;
/// Small on purpose: the cold catalog must be several times the pool, so
/// an unhinted full scan evicts the hot working set.
const BUFFER_FRAMES: usize = 48;
const READ_LATENCY_US: u64 = 1_000;
const WRITE_LATENCY_US: u64 = 0;
/// Point lookups per latency distribution.
const LOOKUPS: usize = 120;
/// Think time between point lookups. Longer than one pool turnover
/// under the concurrent scan (~2 pages/ms against a 48-frame pool), so
/// naive LRU has streamed the working set out before the next touch.
const THINK_MS: u64 = 40;
/// Cold-scan repetitions for the prefetch delta; fastest run reported.
const REPS: usize = 3;
/// Threads of the prefetch-delta record-queue scan.
const SCAN_THREADS: usize = 4;
/// Read-ahead window of the "prefetch on" configuration.
const PREFETCH_WINDOW: usize = 8;
/// Check-mode floor: scan-resistant point-lookup P99 under a concurrent
/// scan vs the naive-LRU P99.
const P99_RATIO_CEILING: f64 = 0.5;
/// Check-mode floor: 4-thread cold-scan wall clock, prefetch on vs off.
const PREFETCH_FLOOR: f64 = 1.3;

/// ~96 fat items: a working set of several pages, so an LRU eviction of
/// the hot document costs a visible burst of re-faults, not one read.
fn hot_xml() -> String {
    let mut s = String::from("<HOT>");
    for i in 0..96 {
        write!(s, "<ITEM>hot item {i} {}</ITEM>", "x".repeat(560)).unwrap();
    }
    s.push_str("</HOT>");
    s
}

/// Cold catalog several times the pool size (~2× in quick mode, ~4×
/// full). The single `<MARK>` in the last section gives the continuous
/// scanner a query that touches every record but produces one hit.
fn cold_xml(quick: bool) -> String {
    let sections = if quick { 800 } else { 1600 };
    let mut s = String::from("<CATALOG>");
    for i in 0..sections {
        s.push_str("<SECTION>");
        for j in 0..20 {
            write!(s, "<FILLER>payload {i}-{j} lorem ipsum</FILLER>").unwrap();
        }
        if i + 1 == sections {
            s.push_str("<MARK>needle</MARK>");
        }
        s.push_str("</SECTION>");
    }
    s.push_str("</CATALOG>");
    s
}

fn repo_with(policy: EvictionPolicy) -> Repository {
    let backend = Arc::new(ThrottledDisk::new(
        MemStorage::new(PAGE_SIZE).unwrap(),
        READ_LATENCY_US,
        WRITE_LATENCY_US,
    )) as Arc<dyn DiskBackend>;
    Repository::create_on_backend(
        backend,
        RepositoryOptions {
            page_size: PAGE_SIZE,
            buffer_bytes: BUFFER_FRAMES * PAGE_SIZE,
            eviction: policy,
            ..RepositoryOptions::default()
        },
    )
    .unwrap()
}

fn scan_opts(threads: usize, prefetch_window: usize) -> PlannerOptions {
    PlannerOptions {
        force: Some(PlanShape::ParallelScan),
        exec: ParallelQueryOptions {
            threads,
            parallel_record_threshold: 1,
            prefetch_window,
        },
        ..PlannerOptions::default()
    }
}

fn percentile(sorted_ms: &[f64], pct: f64) -> f64 {
    let idx = ((sorted_ms.len() as f64 - 1.0) * pct / 100.0).round() as usize;
    sorted_ms[idx]
}

struct PolicyRow {
    policy: &'static str,
    solo_p50_ms: f64,
    solo_p99_ms: f64,
    scan_p50_ms: f64,
    scan_p99_ms: f64,
    scan_passes: u64,
    scan_evictions: u64,
    normal_evictions: u64,
}

struct PrefetchRow {
    policy: &'static str,
    off_ms: f64,
    on_ms: f64,
    speedup: f64,
}

/// One point lookup: a content query over the hot document (loads its
/// records through normal-priority pins, exactly the point-access path).
fn point_lookup(repo: &Repository, doc: natix::DocId, q: &PathQuery) -> Vec<String> {
    let seq = ParallelQueryOptions {
        threads: 1,
        parallel_record_threshold: usize::MAX,
        prefetch_window: 0,
    };
    repo.query_content_opts(doc, q, &seq)
        .unwrap()
        .into_iter()
        .map(|c| format!("{c:?}"))
        .collect()
}

fn latencies_ms(
    repo: &Repository,
    doc: natix::DocId,
    q: &PathQuery,
    expected: &[String],
) -> Vec<f64> {
    let mut out = Vec::with_capacity(LOOKUPS);
    for _ in 0..LOOKUPS {
        std::thread::sleep(std::time::Duration::from_millis(THINK_MS));
        let t0 = Instant::now();
        let got = point_lookup(repo, doc, q);
        out.push(t0.elapsed().as_secs_f64() * 1e3);
        assert_eq!(got, *expected, "point lookup answer changed mid-run");
    }
    out.sort_by(|a, b| a.partial_cmp(b).unwrap());
    out
}

fn bench_policy(
    policy: EvictionPolicy,
    name: &'static str,
    quick: bool,
    expected_cold: &mut Option<u64>,
    expected_hot: &mut Option<Vec<String>>,
) -> (PolicyRow, PrefetchRow) {
    let repo = repo_with(policy);
    let hot = repo.put_xml_streaming("hot", &hot_xml()).unwrap();
    repo.put_xml_streaming("cold", &cold_xml(quick)).unwrap();
    let hot_q = PathQuery::parse("/HOT/ITEM/text()").unwrap();

    // Bit-identity across policies and prefetch settings: the `//*`
    // count and the hot content list are pinned to the first policy's
    // answers.
    let (cold_count, _) = repo
        .count_planned("cold", "//*", &scan_opts(SCAN_THREADS, PREFETCH_WINDOW))
        .unwrap();
    let (cold_count_noprefetch, _) = repo
        .count_planned("cold", "//*", &scan_opts(SCAN_THREADS, 0))
        .unwrap();
    assert_eq!(
        cold_count, cold_count_noprefetch,
        "{name}: prefetch changed the scan result"
    );
    let hot_answer = point_lookup(&repo, hot, &hot_q);
    match expected_cold {
        Some(n) => assert_eq!(
            *n, cold_count,
            "{name}: scan count diverged across policies"
        ),
        None => *expected_cold = Some(cold_count),
    }
    match expected_hot {
        Some(h) => assert_eq!(
            *h, hot_answer,
            "{name}: hot answer diverged across policies"
        ),
        None => *expected_hot = Some(hot_answer.clone()),
    }

    // Solo distribution: warm the working set, then measure.
    repo.clear_buffer().unwrap();
    for _ in 0..3 {
        point_lookup(&repo, hot, &hot_q);
    }
    let solo = latencies_ms(&repo, hot, &hot_q, &hot_answer);

    // Under a continuous 2-thread record-queue scan of the cold catalog.
    // `//MARK` touches every record but yields one hit, so the scanner
    // spends its time on I/O (the displacement source), not on sorting
    // tens of thousands of hits on a shared CPU.
    let (mark_count, _) = repo
        .count_planned("cold", "//MARK", &scan_opts(2, PREFETCH_WINDOW))
        .unwrap();
    assert_eq!(mark_count, 1, "{name}: sentinel query should hit once");
    let stop = AtomicBool::new(false);
    let before = repo.io_stats().snapshot();
    let mut passes = 0u64;
    let under_scan = std::thread::scope(|scope| {
        let scanner = scope.spawn(|| {
            let mut n = 0u64;
            while !stop.load(Ordering::Acquire) {
                let (count, _) = repo
                    .count_planned("cold", "//MARK", &scan_opts(2, PREFETCH_WINDOW))
                    .unwrap();
                assert_eq!(count, mark_count, "racing scan result changed");
                n += 1;
            }
            n
        });
        // Let the scan start displacing frames before sampling.
        std::thread::sleep(std::time::Duration::from_millis(30));
        let lat = latencies_ms(&repo, hot, &hot_q, &hot_answer);
        stop.store(true, Ordering::Release);
        passes = scanner.join().expect("scanner panicked");
        lat
    });
    let after = repo.io_stats().snapshot().since(&before);

    let row = PolicyRow {
        policy: name,
        solo_p50_ms: percentile(&solo, 50.0),
        solo_p99_ms: percentile(&solo, 99.0),
        scan_p50_ms: percentile(&under_scan, 50.0),
        scan_p99_ms: percentile(&under_scan, 99.0),
        scan_passes: passes,
        scan_evictions: after.scan_evictions,
        normal_evictions: after.normal_evictions,
    };
    println!(
        "  {name:<14} solo p50 {:>7.3} ms  p99 {:>7.3} ms   under-scan p50 {:>7.3} ms  p99 {:>7.3} ms  ({} scan passes)",
        row.solo_p50_ms, row.solo_p99_ms, row.scan_p50_ms, row.scan_p99_ms, passes
    );

    // Prefetch delta: cold 4-thread record-queue scans, window on vs off.
    let mut best = [f64::INFINITY; 2];
    for (slot, window) in [(0usize, 0usize), (1, PREFETCH_WINDOW)] {
        for _ in 0..REPS {
            repo.clear_buffer().unwrap();
            let t0 = Instant::now();
            let (count, _) = repo
                .count_planned("cold", "//*", &scan_opts(SCAN_THREADS, window))
                .unwrap();
            best[slot] = best[slot].min(t0.elapsed().as_secs_f64() * 1e3);
            assert_eq!(count, cold_count, "{name}: cold scan result changed");
        }
    }
    let prefetch = PrefetchRow {
        policy: name,
        off_ms: best[0],
        on_ms: best[1],
        speedup: best[0] / best[1],
    };
    println!(
        "  {name:<14} {SCAN_THREADS}-thread cold scan: prefetch off {:>8.1} ms   on {:>8.1} ms   {:.2}x",
        prefetch.off_ms, prefetch.on_ms, prefetch.speedup
    );
    (row, prefetch)
}

fn write_json(quick: bool, rows: &[PolicyRow], prefetch: &[PrefetchRow]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(
        s,
        "  \"benchmark\": \"scan/cache interaction: point-lookup tail latency vs a concurrent full scan, prefetch delta\","
    );
    let _ = writeln!(s, "  \"page_size\": {PAGE_SIZE},");
    let _ = writeln!(s, "  \"buffer_frames\": {BUFFER_FRAMES},");
    let _ = writeln!(
        s,
        "  \"disk\": \"throttled: {READ_LATENCY_US} us/page read, batched reads at 1/4 share, free writes\","
    );
    let _ = writeln!(s, "  \"lookups_per_distribution\": {LOOKUPS},");
    let _ = writeln!(s, "  \"quick_mode\": {quick},");
    s.push_str("  \"policies\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"policy\": \"{}\", \"solo_p50_ms\": {:.3}, \"solo_p99_ms\": {:.3}, \
             \"under_scan_p50_ms\": {:.3}, \"under_scan_p99_ms\": {:.3}, \
             \"scan_passes\": {}, \"scan_evictions\": {}, \"normal_evictions\": {}, \
             \"identical_results\": true}}{}",
            r.policy,
            r.solo_p50_ms,
            r.solo_p99_ms,
            r.scan_p50_ms,
            r.scan_p99_ms,
            r.scan_passes,
            r.scan_evictions,
            r.normal_evictions,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    s.push_str("  ],\n");
    s.push_str("  \"prefetch\": [\n");
    for (i, p) in prefetch.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"policy\": \"{}\", \"scan_threads\": {SCAN_THREADS}, \"window\": {PREFETCH_WINDOW}, \
             \"off_ms\": {:.1}, \"on_ms\": {:.1}, \"speedup\": {:.2}, \"identical_results\": true}}{}",
            p.policy,
            p.off_ms,
            p.on_ms,
            p.speedup,
            if i + 1 < prefetch.len() { "," } else { "" }
        );
    }
    s.push_str("  ],\n");
    let _ = writeln!(
        s,
        "  \"floors\": {{\"scan_resistant_p99_ratio_ceiling\": {P99_RATIO_CEILING}, \
         \"prefetch_speedup_floor\": {PREFETCH_FLOOR}}}"
    );
    s.push_str("}\n");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--check" || a == "--quick");
    let check = args.iter().any(|a| a == "--check");

    println!(
        "scan/cache interaction ({PAGE_SIZE} B pages, {BUFFER_FRAMES}-frame pool, throttled disk{}):",
        if quick { ", quick" } else { "" }
    );
    let mut expected_cold = None;
    let mut expected_hot = None;
    let (lru_row, lru_prefetch) = bench_policy(
        EvictionPolicy::Lru,
        "lru",
        quick,
        &mut expected_cold,
        &mut expected_hot,
    );
    let (sr_row, sr_prefetch) = bench_policy(
        EvictionPolicy::ScanResistant,
        "scan-resistant",
        quick,
        &mut expected_cold,
        &mut expected_hot,
    );

    let p99_ratio = sr_row.scan_p99_ms / lru_row.scan_p99_ms;
    println!(
        "under-scan P99: scan-resistant {:.3} ms vs lru {:.3} ms — ratio {:.2} (ceiling {P99_RATIO_CEILING})",
        sr_row.scan_p99_ms, lru_row.scan_p99_ms, p99_ratio
    );
    println!(
        "prefetch at {SCAN_THREADS} threads: lru {:.2}x, scan-resistant {:.2}x (floor {PREFETCH_FLOOR}x on lru)",
        lru_prefetch.speedup, sr_prefetch.speedup
    );
    if check {
        assert!(
            p99_ratio <= P99_RATIO_CEILING,
            "scan-resistant under-scan P99 {:.3} ms is not ≤ {P99_RATIO_CEILING}× the LRU P99 {:.3} ms",
            sr_row.scan_p99_ms,
            lru_row.scan_p99_ms
        );
        assert!(
            lru_prefetch.speedup >= PREFETCH_FLOOR,
            "prefetch speedup {:.2}x fell below the {PREFETCH_FLOOR}x floor",
            lru_prefetch.speedup
        );
        println!("check mode: all floors met");
    } else {
        let json = write_json(quick, &[lru_row, sr_row], &[lru_prefetch, sr_prefetch]);
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scan_cache.json");
        std::fs::write(path, &json).unwrap();
        println!("wrote {path}");
    }
}
