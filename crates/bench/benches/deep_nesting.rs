//! Deep-nesting benchmark: bulkload and descendant-query cost on the
//! depth-stress corpus, over the throttled disk model.
//!
//! ```sh
//! cargo bench -p natix-bench --bench deep_nesting             # writes BENCH_deep_nesting.json
//! cargo bench -p natix-bench --bench deep_nesting -- --check  # CI mode: asserts the floors
//! ```
//!
//! Deeply nested documents put their bytes on the *open spine*, not in
//! packable sibling runs — the regime depth-aware packing (one
//! continuation placeholder per spilled piece, separator-style prefix
//! chains in the continuation groups) exists for. The benchmark loads the
//! [`natix_corpus::deep`] corpus twice, with `depth_packing` on and off
//! (the per-level ablation layout whose record-tree height tracks the
//! document depth), plus once through the per-node oracle in memory for
//! the height reference, and measures:
//!
//! * streaming bulkload wall time over the throttled disk;
//! * record count and record-tree height of the stored tree;
//! * a cold-buffer `//TAIL` descendant scan: wall time and buffer misses
//!   (every record of the tree is claimed once — fewer, denser records
//!   mean fewer page reads).
//!
//! Check mode (CI) asserts the depth-aware acceptance criteria:
//! byte-identical `get_xml` across all three paths, packed record-tree
//! height at most **1.1×** the per-node oracle's, and the packed layout
//! no worse than the ablation layout on records, height and scan misses.
//!
//! A second ablation times the **first structural edit** deep in the
//! packed corpus with lazy normalization scoping on vs off: the lazy
//! path inserts in place when the site's child list is local to its
//! record (falling back to touched-cluster normalization otherwise),
//! while the eager path unpacks the packed structure from the cluster
//! host down before the edit can proceed. Both paths must produce
//! byte-identical documents; check mode asserts the lazy first edit is
//! at least [`LAZY_EDIT_FLOOR`]× faster.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use natix::{ParallelQueryOptions, PathQuery, Repository, RepositoryOptions};
use natix_corpus::{generate_deep, DeepConfig};
use natix_storage::{DiskBackend, MemStorage, ThrottledDisk};
use natix_tree::{SplitMatrix, TreeConfig};
use natix_xml::{SymbolTable, WriteOptions};

const PAGE_SIZE: usize = 2048;
/// Small on purpose: the corpus must not fit the pool, so the descendant
/// scan pays real (throttled) page reads per record.
const BUFFER_FRAMES: usize = 24;
const READ_LATENCY_US: u64 = 1_500;
const WRITE_LATENCY_US: u64 = 3_000;
const DEPTH: usize = 3_000;
/// Acceptance ceiling asserted in `--check` mode: packed record-tree
/// height vs the per-node oracle's (the depth-aware packing criterion).
const HEIGHT_RATIO_CEILING: f64 = 1.1;
/// Check-mode floor: cold first-edit wall time, eager full-chain
/// normalization vs the lazy in-place edit path.
const LAZY_EDIT_FLOOR: f64 = 1.3;

struct Run {
    layout: &'static str,
    load_ms: f64,
    records: usize,
    height: usize,
    record_bytes: usize,
    scan_ms: f64,
    scan_misses: u64,
    tail_hits: usize,
}

fn corpus() -> (String, SymbolTable) {
    let mut syms = SymbolTable::new();
    let cfg = DeepConfig {
        depth: DEPTH,
        ..DeepConfig::paper()
    };
    let doc = generate_deep(&cfg, &mut syms);
    let xml = natix_xml::write_document(&doc, &syms, WriteOptions::compact()).unwrap();
    (xml, syms)
}

struct EditRun {
    mode: &'static str,
    first_edit_ms: f64,
    edit_misses: u64,
}

/// Cold first structural edit deep in the packed corpus, with lazy
/// normalization scoping on vs off. The edit target is the mid-spine
/// `//TAIL` hit — the site where the eager path's cluster-host walk
/// reaches highest and its transitive group inlining unpacks roughly
/// half the document, while the lazy path inserts in place (the site's
/// child list is local to its record, so no normalization runs at all).
fn edit_ablation(xml: &str, mode: &'static str, lazy: bool) -> (EditRun, String) {
    let backend = Arc::new(ThrottledDisk::new(
        MemStorage::new(PAGE_SIZE).unwrap(),
        READ_LATENCY_US,
        WRITE_LATENCY_US,
    )) as Arc<dyn DiskBackend>;
    let repo = Repository::create_on_backend(
        backend,
        RepositoryOptions {
            page_size: PAGE_SIZE,
            buffer_bytes: BUFFER_FRAMES * PAGE_SIZE,
            matrix: SplitMatrix::all_other(),
            tree_config: TreeConfig {
                depth_packing: true,
                lazy_normalize: lazy,
                ..TreeConfig::paper()
            },
            ..RepositoryOptions::default()
        },
    )
    .unwrap();
    let doc = repo.put_xml_streaming("deep", xml).unwrap();
    let q = PathQuery::parse("//TAIL").unwrap();
    let seq = ParallelQueryOptions {
        threads: 1,
        parallel_record_threshold: usize::MAX,
        ..Default::default()
    };
    let hits = repo.query_parallel(doc, &q, &seq).unwrap();
    let target = hits[hits.len() / 2];
    repo.clear_buffer().unwrap();
    let s0 = repo.io_stats().snapshot();
    let t0 = Instant::now();
    repo.insert_element(doc, target, natix_tree::InsertPos::Last, "NOTE")
        .unwrap();
    let first_edit_ms = t0.elapsed().as_secs_f64() * 1e3;
    let run = EditRun {
        mode,
        first_edit_ms,
        edit_misses: repo.io_stats().snapshot().since(&s0).buffer_misses,
    };
    (run, repo.get_xml("deep").unwrap())
}

fn throttled_repo(depth_packing: bool) -> Repository {
    let backend = Arc::new(ThrottledDisk::new(
        MemStorage::new(PAGE_SIZE).unwrap(),
        READ_LATENCY_US,
        WRITE_LATENCY_US,
    )) as Arc<dyn DiskBackend>;
    Repository::create_on_backend(
        backend,
        RepositoryOptions {
            page_size: PAGE_SIZE,
            buffer_bytes: BUFFER_FRAMES * PAGE_SIZE,
            matrix: SplitMatrix::all_other(),
            tree_config: TreeConfig {
                depth_packing,
                ..TreeConfig::paper()
            },
            ..RepositoryOptions::default()
        },
    )
    .unwrap()
}

fn run_layout(layout: &'static str, depth_packing: bool, xml: &str) -> (Run, String) {
    let repo = throttled_repo(depth_packing);
    let t0 = Instant::now();
    let doc = repo.put_xml_streaming("deep", xml).unwrap();
    let load_ms = t0.elapsed().as_secs_f64() * 1e3;
    let stats = repo.physical_stats("deep").unwrap();
    // Cold-buffer record-granular descendant scan.
    let q = PathQuery::parse("//TAIL").unwrap();
    let seq = ParallelQueryOptions {
        threads: 1,
        parallel_record_threshold: usize::MAX,
        ..Default::default()
    };
    repo.clear_buffer().unwrap();
    let before = repo.io_stats().snapshot();
    let t0 = Instant::now();
    let hits = repo.query_parallel(doc, &q, &seq).unwrap();
    let scan_ms = t0.elapsed().as_secs_f64() * 1e3;
    let scan_misses = repo.io_stats().snapshot().since(&before).buffer_misses;
    let roundtrip = repo.get_xml("deep").unwrap();
    (
        Run {
            layout,
            load_ms,
            records: stats.records,
            height: stats.record_depth,
            record_bytes: stats.record_bytes,
            scan_ms,
            scan_misses,
            tail_hits: hits.len(),
        },
        roundtrip,
    )
}

/// Per-node oracle height reference, in memory (the throttled disk would
/// make the O(record size)-per-node path take minutes without changing
/// the structural result).
fn oracle_height(xml: &str) -> (usize, String) {
    let repo = Repository::create_in_memory(RepositoryOptions {
        page_size: PAGE_SIZE,
        matrix: SplitMatrix::all_other(),
        ..RepositoryOptions::default()
    })
    .unwrap();
    let mut syms = repo.symbols_mut().clone();
    let doc =
        natix_xml::parse_document(xml, &mut syms, natix_xml::ParserOptions::default()).unwrap();
    *repo.symbols_mut() = syms;
    repo.put_document_per_node("deep", &doc).unwrap();
    let stats = repo.physical_stats("deep").unwrap();
    (stats.record_depth, repo.get_xml("deep").unwrap())
}

fn write_json(runs: &[Run], oracle_h: usize, ratio: f64, edits: &[EditRun]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(
        s,
        "  \"benchmark\": \"deep nesting: bulkload + descendant scan on the depth corpus\","
    );
    let _ = writeln!(s, "  \"page_size\": {PAGE_SIZE},");
    let _ = writeln!(s, "  \"buffer_frames\": {BUFFER_FRAMES},");
    let _ = writeln!(
        s,
        "  \"disk\": \"throttled: {READ_LATENCY_US} us/page read, \
         {WRITE_LATENCY_US} us/page write\","
    );
    let _ = writeln!(s, "  \"corpus\": \"deep corpus, depth {DEPTH} spine\",");
    let _ = writeln!(s, "  \"per_node_oracle_height\": {oracle_h},");
    let _ = writeln!(s, "  \"packed_height_ratio_vs_oracle\": {ratio:.3},");
    let _ = writeln!(s, "  \"height_ratio_ceiling\": {HEIGHT_RATIO_CEILING},");
    s.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"layout\": \"{}\", \"load_ms\": {:.1}, \"records\": {}, \
             \"record_tree_height\": {}, \"record_bytes\": {}, \
             \"tail_scan_ms\": {:.1}, \"tail_scan_buffer_misses\": {}, \
             \"tail_hits\": {}}}{}",
            r.layout,
            r.load_ms,
            r.records,
            r.height,
            r.record_bytes,
            r.scan_ms,
            r.scan_misses,
            r.tail_hits,
            if i + 1 < runs.len() { "," } else { "" }
        );
    }
    s.push_str("  ],\n");
    s.push_str("  \"first_edit_normalization\": [\n");
    for (i, e) in edits.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"mode\": \"{}\", \"first_edit_ms\": {:.1}, \
             \"edit_buffer_misses\": {}, \"identical_results\": true}}{}",
            e.mode,
            e.first_edit_ms,
            e.edit_misses,
            if i + 1 < edits.len() { "," } else { "" }
        );
    }
    s.push_str("  ],\n");
    let _ = writeln!(s, "  \"lazy_edit_floor\": {LAZY_EDIT_FLOOR}");
    s.push_str("}\n");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let check = args.iter().any(|a| a == "--check");

    println!(
        "deep-nesting corpus ({PAGE_SIZE} B pages, {BUFFER_FRAMES}-frame pool, throttled disk):"
    );
    let (xml, _syms) = corpus();
    let (packed, packed_xml) = run_layout("depth-aware packed", true, &xml);
    let (ablation, ablation_xml) = run_layout("per-level pieces (ablation)", false, &xml);
    let (oracle_h, oracle_xml) = oracle_height(&xml);
    for r in [&packed, &ablation] {
        println!(
            "  {:<28} load {:>8.1} ms  {:>5} records  height {:>4}  \
             //TAIL scan {:>8.1} ms ({} misses, {} hits)",
            r.layout, r.load_ms, r.records, r.height, r.scan_ms, r.scan_misses, r.tail_hits
        );
    }
    println!("  per-node oracle height: {oracle_h}");
    assert_eq!(packed_xml, xml, "packed layout does not round-trip");
    assert_eq!(ablation_xml, xml, "ablation layout does not round-trip");
    assert_eq!(oracle_xml, xml, "per-node oracle does not round-trip");
    assert_eq!(packed.tail_hits, ablation.tail_hits);

    let ratio = packed.height as f64 / oracle_h as f64;
    println!("  packed height ratio vs oracle: {ratio:.3} (ceiling {HEIGHT_RATIO_CEILING})");

    let (lazy_edit, lazy_xml) = edit_ablation(&xml, "lazy (in-place)", true);
    let (eager_edit, eager_xml) = edit_ablation(&xml, "eager (normalize chain)", false);
    assert_eq!(
        lazy_xml, eager_xml,
        "edit result diverged across normalization modes"
    );
    for e in [&lazy_edit, &eager_edit] {
        println!(
            "  first edit, {:<24} {:>8.1} ms  ({} buffer misses)",
            e.mode, e.first_edit_ms, e.edit_misses
        );
    }
    let edit_speedup = eager_edit.first_edit_ms / lazy_edit.first_edit_ms;
    println!(
        "  lazy-normalization first-edit speedup: {edit_speedup:.2}x (floor {LAZY_EDIT_FLOOR})"
    );
    if check {
        assert!(
            ratio <= HEIGHT_RATIO_CEILING,
            "packed record-tree height {} vs per-node {} exceeds the \
             {HEIGHT_RATIO_CEILING}x ceiling",
            packed.height,
            oracle_h
        );
        assert!(
            packed.height <= ablation.height,
            "packed height {} worse than the per-level ablation's {}",
            packed.height,
            ablation.height
        );
        assert!(
            packed.records <= ablation.records,
            "packed layout uses {} records, ablation {}",
            packed.records,
            ablation.records
        );
        assert!(
            packed.scan_misses <= ablation.scan_misses,
            "packed scan paid {} buffer misses, ablation {}",
            packed.scan_misses,
            ablation.scan_misses
        );
        assert!(
            edit_speedup >= LAZY_EDIT_FLOOR,
            "lazy first edit {:.1} ms is not {LAZY_EDIT_FLOOR}x faster than eager {:.1} ms",
            lazy_edit.first_edit_ms,
            eager_edit.first_edit_ms
        );
        println!("check mode: all floors met");
    } else {
        let json = write_json(
            &[packed, ablation],
            oracle_h,
            ratio,
            &[lazy_edit, eager_edit],
        );
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_deep_nesting.json");
        std::fs::write(path, &json).unwrap();
        println!("wrote {path}");
    }
}
