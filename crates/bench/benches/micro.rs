//! Criterion micro-benchmarks for the NATIX building blocks: slotted-page
//! operations, Appendix-A record ser/de, split planning, XML parsing,
//! stored-tree traversal and B+-tree lookups.
//!
//! These complement the `figures` binary (which reproduces the paper's
//! system-level plots): micro-benchmarks track the CPU cost of the hot
//! paths so regressions are visible independent of the I/O model.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use natix::{Repository, RepositoryOptions};
use natix_corpus::{generate_play, CorpusConfig};
use natix_storage::btree::BTree;
use natix_storage::slotted::SlottedPage;
use natix_storage::{
    BufferManager, EvictionPolicy, IoStats, MemStorage, PageBuf, Rid, StorageManager,
};
use natix_tree::record;
use natix_tree::typetable::TypeTable;
use natix_tree::{PContent, RecordTree, SplitMatrix, TreeConfig};
use natix_xml::{LiteralValue, ParserOptions, SymbolTable, WriteOptions, LABEL_TEXT};

fn corpus_play_xml() -> (String, natix_xml::Document, SymbolTable) {
    let mut syms = SymbolTable::new();
    let cfg = CorpusConfig { scale: 0.3, ..CorpusConfig::paper() };
    let play = generate_play(&cfg, 0, &mut syms);
    let xml = natix_xml::write_document(&play.doc, &syms, WriteOptions::compact()).unwrap();
    (xml, play.doc, syms)
}

fn sample_record(nodes: usize) -> RecordTree {
    let mut t = RecordTree::new(5, PContent::Aggregate(vec![]), Rid::invalid());
    for i in 0..nodes {
        let e = t.alloc(6, PContent::Aggregate(vec![]));
        t.attach(t.root(), i, e);
        let lit = t.alloc(
            LABEL_TEXT,
            PContent::Literal(LiteralValue::String(format!("payload number {i}"))),
        );
        t.attach(e, 0, lit);
    }
    t
}

fn bench_slotted_page(c: &mut Criterion) {
    let mut g = c.benchmark_group("slotted_page");
    g.bench_function("insert_delete_64B_8K", |b| {
        b.iter_batched(
            || {
                let mut p = PageBuf::new(8192);
                SlottedPage::format(&mut p);
                p
            },
            |mut p| {
                let mut sp = SlottedPage::open(&mut p).unwrap();
                let mut slots = Vec::new();
                for _ in 0..64 {
                    slots.push(sp.insert(&[7u8; 64]).unwrap());
                }
                for s in slots {
                    sp.delete(s).unwrap();
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_record_serde(c: &mut Criterion) {
    let tree = sample_record(40);
    let mut table = TypeTable::new();
    let (bytes, _) = record::serialize(&tree, &mut table);
    let mut g = c.benchmark_group("record");
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("serialize_40_nodes", |b| {
        b.iter(|| {
            let mut t = TypeTable::new();
            record::serialize(&tree, &mut t)
        })
    });
    g.bench_function("deserialize_40_nodes", |b| {
        b.iter(|| record::deserialize(&bytes, &table, Rid::new(1, 1)).unwrap())
    });
    g.finish();
}

fn bench_split_planning(c: &mut Criterion) {
    let cfg = TreeConfig::paper();
    let matrix = SplitMatrix::all_other();
    c.bench_function("split/plan_200_nodes", |b| {
        b.iter_batched(
            || sample_record(200),
            |tree| natix_tree::plan_split(tree, &cfg, &matrix, 2048).unwrap(),
            BatchSize::SmallInput,
        )
    });
}

fn bench_xml_parse(c: &mut Criterion) {
    let (xml, _, _) = corpus_play_xml();
    let mut g = c.benchmark_group("xml");
    g.throughput(Throughput::Bytes(xml.len() as u64));
    g.bench_function("parse_play", |b| {
        b.iter(|| {
            let mut syms = SymbolTable::new();
            natix_xml::parse_document(&xml, &mut syms, ParserOptions::default()).unwrap()
        })
    });
    g.finish();
}

fn bench_stored_traversal(c: &mut Criterion) {
    let (_, doc, syms) = corpus_play_xml();
    let mut repo = Repository::create_in_memory(RepositoryOptions {
        page_size: 8192,
        ..Default::default()
    })
    .unwrap();
    *repo.symbols_mut() = syms;
    let id = repo.put_document("play", &doc).unwrap();
    let nodes = doc.node_count() as u64;
    let mut g = c.benchmark_group("stored");
    g.throughput(Throughput::Elements(nodes));
    g.bench_function("traverse_play", |b| {
        b.iter(|| {
            let mut n = 0usize;
            repo.traverse_document(id, |_, _| n += 1).unwrap();
            n
        })
    });
    g.bench_function("serialize_play", |b| b.iter(|| repo.get_xml("play").unwrap()));
    g.finish();
}

fn bench_query(c: &mut Criterion) {
    let (_, doc, syms) = corpus_play_xml();
    let mut repo = Repository::create_in_memory(RepositoryOptions {
        page_size: 8192,
        ..Default::default()
    })
    .unwrap();
    *repo.symbols_mut() = syms;
    repo.put_document("play", &doc).unwrap();
    c.bench_function("query/q1_speakers", |b| {
        b.iter(|| repo.query("play", "/PLAY/ACT[3]/SCENE[2]//SPEAKER").unwrap())
    });
    c.bench_function("query/q3_opening_speech", |b| {
        b.iter(|| repo.query("play", "/PLAY/ACT[1]/SCENE[1]/SPEECH[1]").unwrap())
    });
}

fn bench_btree(c: &mut Criterion) {
    let backend = Arc::new(MemStorage::new(4096).unwrap());
    let bm = Arc::new(BufferManager::new(backend, 512, EvictionPolicy::Lru, IoStats::new_shared()));
    let sm = StorageManager::create(bm).unwrap();
    let seg = sm.create_segment("idx").unwrap();
    let bt = BTree::create(&sm, seg, 8).unwrap();
    for i in 0..50_000u64 {
        bt.insert(&i.to_be_bytes(), i).unwrap();
    }
    c.bench_function("btree/get_50k", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 9973) % 50_000;
            bt.get(&i.to_be_bytes()).unwrap()
        })
    });
}

criterion_group!(
    benches,
    bench_slotted_page,
    bench_record_serde,
    bench_split_planning,
    bench_xml_parse,
    bench_stored_traversal,
    bench_query,
    bench_btree
);
criterion_main!(benches);
