//! Micro-benchmarks for the NATIX building blocks, headlined by the
//! **bulkload vs per-node insertion** comparison (the tentpole measurement
//! of the streaming bulkloader).
//!
//! Runs as a plain `harness = false` benchmark binary (the build
//! environment has no network access, so no criterion):
//!
//! ```sh
//! cargo bench -p natix-bench --bench micro             # full run, writes BENCH_bulkload.json
//! cargo bench -p natix-bench --bench micro -- --check  # quick CI mode: asserts the speedup
//! ```
//!
//! The bulkload comparison stores the generated Shakespeare corpus and a
//! purchase-order batch (append order, 8 KB pages) three ways — per-node
//! inserts through the incremental tree-growth procedure (the oracle),
//! the bottom-up bulkloader from a parsed document, and the streaming
//! bulkloader straight from XML text — verifies the stored documents are
//! byte-identical on `get_xml`, and records the wall-clock speedup in
//! `BENCH_bulkload.json` at the workspace root.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use natix::{Repository, RepositoryOptions};
use natix_corpus::{generate_orders, generate_play, CorpusConfig, OrdersConfig};
use natix_storage::btree::BTree;
use natix_storage::slotted::SlottedPage;
use natix_storage::{
    BufferManager, EvictionPolicy, IoStats, MemStorage, PageBuf, Rid, StorageManager,
};
use natix_tree::typetable::TypeTable;
use natix_tree::{record, PContent, RecordTree, SplitMatrix, TreeConfig};
use natix_xml::{Document, LiteralValue, ParserOptions, SymbolTable, WriteOptions, LABEL_TEXT};

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Times `f` once after a tiny warmup (the workloads here are macro-sized;
/// repetition is applied where iteration is cheap).
fn time_once<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let v = f();
    (v, ms(t0.elapsed()))
}

struct BulkloadRow {
    corpus: &'static str,
    documents: usize,
    nodes: usize,
    xml_bytes: usize,
    per_node_ms: f64,
    bulkload_ms: f64,
    streaming_ms: f64,
    identical_xml: bool,
    per_node_records: usize,
    bulk_records: usize,
    per_node_depth: usize,
    bulk_depth: usize,
}

impl BulkloadRow {
    fn speedup(&self) -> f64 {
        self.per_node_ms / self.bulkload_ms.max(1e-9)
    }
}

fn repo(page_size: usize) -> Repository {
    Repository::create_in_memory(RepositoryOptions {
        page_size,
        ..Default::default()
    })
    .unwrap()
}

/// One corpus (named documents + shared symbols) for the comparison.
fn shakespeare_corpus(quick: bool) -> (&'static str, Vec<(String, Document)>, SymbolTable) {
    let mut syms = SymbolTable::new();
    let cfg = if quick {
        CorpusConfig {
            plays: 2,
            scale: 0.15,
            ..CorpusConfig::tiny()
        }
    } else {
        CorpusConfig {
            plays: 6,
            scale: 1.0,
            ..CorpusConfig::paper()
        }
    };
    let docs = (0..cfg.plays)
        .map(|i| {
            let p = generate_play(&cfg, i, &mut syms);
            (p.name, p.doc)
        })
        .collect();
    ("shakespeare", docs, syms)
}

fn orders_corpus(quick: bool) -> (&'static str, Vec<(String, Document)>, SymbolTable) {
    let mut syms = SymbolTable::new();
    let cfg = if quick {
        OrdersConfig::tiny()
    } else {
        OrdersConfig::paper()
    };
    let docs = (0..3)
        .map(|i| {
            let doc = generate_orders(
                &OrdersConfig {
                    seed: cfg.seed ^ i as u64,
                    ..cfg.clone()
                },
                &mut syms,
            );
            (format!("orders-{i}"), doc)
        })
        .collect();
    ("orders", docs, syms)
}

/// The tentpole measurement: per-node oracle vs bulkload vs streaming
/// bulkload, identical-output check included.
fn bench_bulkload(page_size: usize, quick: bool) -> Vec<BulkloadRow> {
    let mut rows = Vec::new();
    for (corpus, docs, syms) in [shakespeare_corpus(quick), orders_corpus(quick)] {
        let nodes: usize = docs.iter().map(|(_, d)| d.node_count()).sum();
        let xmls: Vec<(String, String)> = docs
            .iter()
            .map(|(n, d)| {
                (
                    n.clone(),
                    natix_xml::write_document(d, &syms, WriteOptions::compact()).unwrap(),
                )
            })
            .collect();
        let xml_bytes: usize = xmls.iter().map(|(_, x)| x.len()).sum();

        // Per-node oracle (the pre-PR storage path).
        let per_node = repo(page_size);
        *per_node.symbols_mut() = syms.clone();
        let (_, per_node_ms) = time_once(|| {
            for (name, doc) in &docs {
                per_node.put_document_per_node(name, doc).unwrap();
            }
        });

        // Bulkload from the parsed document.
        let bulk = repo(page_size);
        *bulk.symbols_mut() = syms.clone();
        let (_, bulkload_ms) = time_once(|| {
            for (name, doc) in &docs {
                bulk.put_document(name, doc).unwrap();
            }
        });

        // Streaming bulkload straight from XML text (includes parsing).
        let streamed = repo(page_size);
        *streamed.symbols_mut() = syms.clone();
        let (_, streaming_ms) = time_once(|| {
            for (name, xml) in &xmls {
                streamed.put_xml_streaming(name, xml).unwrap();
            }
        });

        // Identical stored documents, and all invariants hold.
        let mut identical = true;
        let (mut pn_records, mut b_records, mut pn_depth, mut b_depth) = (0, 0, 0, 0);
        for (name, _) in &docs {
            let a = per_node.get_xml(name).unwrap();
            let b = bulk.get_xml(name).unwrap();
            let c = streamed.get_xml(name).unwrap();
            identical &= a == b && b == c;
            let ps = per_node.physical_stats(name).unwrap();
            let bs = bulk.physical_stats(name).unwrap();
            pn_records += ps.records;
            b_records += bs.records;
            pn_depth = pn_depth.max(ps.record_depth);
            b_depth = b_depth.max(bs.record_depth);
        }
        rows.push(BulkloadRow {
            corpus,
            documents: docs.len(),
            nodes,
            xml_bytes,
            per_node_ms,
            bulkload_ms,
            streaming_ms,
            identical_xml: identical,
            per_node_records: pn_records,
            bulk_records: b_records,
            per_node_depth: pn_depth,
            bulk_depth: b_depth,
        });
    }
    rows
}

fn write_json(page_size: usize, quick: bool, rows: &[BulkloadRow]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(
        s,
        "  \"benchmark\": \"bulkload vs per-node insertion (append order)\","
    );
    let _ = writeln!(s, "  \"page_size\": {page_size},");
    let _ = writeln!(s, "  \"quick_mode\": {quick},");
    s.push_str("  \"corpora\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"corpus\": \"{}\",", r.corpus);
        let _ = writeln!(s, "      \"documents\": {},", r.documents);
        let _ = writeln!(s, "      \"logical_nodes\": {},", r.nodes);
        let _ = writeln!(s, "      \"xml_bytes\": {},", r.xml_bytes);
        let _ = writeln!(s, "      \"per_node_ms\": {:.2},", r.per_node_ms);
        let _ = writeln!(s, "      \"bulkload_ms\": {:.2},", r.bulkload_ms);
        let _ = writeln!(s, "      \"streaming_from_xml_ms\": {:.2},", r.streaming_ms);
        let _ = writeln!(
            s,
            "      \"speedup_bulkload_vs_per_node\": {:.2},",
            r.speedup()
        );
        let _ = writeln!(s, "      \"identical_get_xml\": {},", r.identical_xml);
        let _ = writeln!(s, "      \"per_node_records\": {},", r.per_node_records);
        let _ = writeln!(s, "      \"bulkload_records\": {},", r.bulk_records);
        let _ = writeln!(s, "      \"per_node_record_depth\": {},", r.per_node_depth);
        let _ = writeln!(s, "      \"bulkload_record_depth\": {}", r.bulk_depth);
        let _ = writeln!(s, "    }}{}", if i + 1 < rows.len() { "," } else { "" });
    }
    s.push_str("  ]\n}\n");
    s
}

// ======================================================================
// CPU micro-benchmarks for the building blocks — the full set the old
// criterion suite tracked (slotted page, record ser/de, split planning,
// XML parsing, stored-tree traversal and serialisation, path queries,
// B+-tree lookups), re-hosted on plain loops, median-of-5.
// ======================================================================

fn bench_n(name: &str, iters: usize, mut f: impl FnMut()) {
    let mut samples = Vec::with_capacity(5);
    for _ in 0..5 {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        samples.push(ms(t0.elapsed()) / iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    println!("  {name:<38} {:>10.4} ms/iter", samples[2]);
}

fn sample_record(nodes: usize) -> RecordTree {
    let mut t = RecordTree::new(5, PContent::Aggregate(vec![]), Rid::invalid());
    for i in 0..nodes {
        let e = t.alloc(6, PContent::Aggregate(vec![]));
        t.attach(t.root(), i, e);
        let lit = t.alloc(
            LABEL_TEXT,
            PContent::Literal(LiteralValue::String(format!("payload number {i}"))),
        );
        t.attach(e, 0, lit);
    }
    t
}

fn cpu_micros() {
    println!("building blocks:");
    bench_n("slotted_page/insert_delete_64B_8K", 200, || {
        let mut p = PageBuf::new(8192);
        SlottedPage::format(&mut p);
        let mut sp = SlottedPage::open(&mut p).unwrap();
        let mut slots = Vec::new();
        for _ in 0..64 {
            slots.push(sp.insert(&[7u8; 64]).unwrap());
        }
        for s in slots {
            sp.delete(s).unwrap();
        }
    });
    let tree = sample_record(40);
    let mut table = TypeTable::new();
    let (bytes, _) = record::serialize(&tree, &mut table);
    bench_n("record/serialize_40_nodes", 2000, || {
        let mut t = TypeTable::new();
        let _ = record::serialize(&tree, &mut t);
    });
    bench_n("record/deserialize_40_nodes", 2000, || {
        let _ = record::deserialize(&bytes, &table, Rid::new(1, 1)).unwrap();
    });
    let cfg = TreeConfig::paper();
    let matrix = SplitMatrix::all_other();
    bench_n("split/plan_200_nodes", 200, || {
        let t = sample_record(200);
        let _ = natix_tree::plan_split(t, &cfg, &matrix, 2048).unwrap();
    });
    let mut syms = SymbolTable::new();
    let play = generate_play(
        &CorpusConfig {
            scale: 0.3,
            ..CorpusConfig::paper()
        },
        0,
        &mut syms,
    );
    let xml = natix_xml::write_document(&play.doc, &syms, WriteOptions::compact()).unwrap();
    bench_n("xml/parse_play", 20, || {
        let mut s = SymbolTable::new();
        let _ = natix_xml::parse_document(&xml, &mut s, ParserOptions::default()).unwrap();
    });
    let r = repo(8192);
    *r.symbols_mut() = syms.clone();
    let id = r.put_document("play", &play.doc).unwrap();
    bench_n("stored/traverse_play", 20, || {
        let mut n = 0usize;
        r.traverse_document(id, |_, _| n += 1).unwrap();
        std::hint::black_box(n);
    });
    bench_n("stored/serialize_play", 20, || {
        std::hint::black_box(r.get_xml("play").unwrap().len());
    });
    bench_n("query/q1_speakers", 20, || {
        std::hint::black_box(
            r.query("play", "/PLAY/ACT[3]/SCENE[2]//SPEAKER")
                .unwrap()
                .len(),
        );
    });
    bench_n("query/q3_opening_speech", 20, || {
        std::hint::black_box(
            r.query("play", "/PLAY/ACT[1]/SCENE[1]/SPEECH[1]")
                .unwrap()
                .len(),
        );
    });
    let backend = Arc::new(MemStorage::new(4096).unwrap());
    let bm = Arc::new(BufferManager::new(
        backend,
        512,
        EvictionPolicy::Lru,
        IoStats::new_shared(),
    ));
    let sm = StorageManager::create(bm).unwrap();
    let seg = sm.create_segment("idx").unwrap();
    let bt = BTree::create(&sm, seg, 8).unwrap();
    for i in 0..50_000u64 {
        bt.insert(&i.to_be_bytes(), i).unwrap();
    }
    let mut i = 0u64;
    bench_n("btree/get_50k", 2000, || {
        i = (i + 9973) % 50_000;
        std::hint::black_box(bt.get(&i.to_be_bytes()).unwrap());
    });
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--check" || a == "--quick");
    let skip_json = args.iter().any(|a| a == "--check");
    let page_size = 8192;

    println!(
        "bulkload vs per-node insertion (append order, {page_size} B pages{}):",
        if quick { ", quick" } else { "" }
    );
    let rows = bench_bulkload(page_size, quick);
    for r in &rows {
        println!(
            "  {:<12} {:>7} nodes {:>9} B XML | per-node {:>9.1} ms | bulkload {:>8.1} ms | stream {:>8.1} ms | {:>6.1}x | identical: {}",
            r.corpus, r.nodes, r.xml_bytes, r.per_node_ms, r.bulkload_ms, r.streaming_ms,
            r.speedup(), r.identical_xml,
        );
        assert!(
            r.identical_xml,
            "{}: bulkload output differs from the per-node oracle",
            r.corpus
        );
    }

    if skip_json {
        // CI check mode: fail the build if the bulkloader regresses below
        // the acceptance threshold (≥5× vs per-node at 8 KB pages).
        for r in &rows {
            assert!(
                r.speedup() >= 5.0,
                "{}: bulkload speedup {:.1}x fell below the 5x acceptance floor",
                r.corpus,
                r.speedup()
            );
        }
        println!("check mode: all speedups >= 5x");
    } else {
        let json = write_json(page_size, quick, &rows);
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_bulkload.json");
        std::fs::write(path, &json).unwrap();
        println!("wrote {path}");
        cpu_micros();
    }
}
