//! Mixed read/write workload benchmark of the shared-state edit path:
//! **N reader threads racing one writer on the same document** over the
//! throttled disk model.
//!
//! ```sh
//! cargo bench -p natix-bench --bench mixed_workload             # writes BENCH_mixed_workload.json
//! cargo bench -p natix-bench --bench mixed_workload -- --check  # CI mode: asserts the speedup floor
//! ```
//!
//! Before record-level versioning, structural edits took `&mut
//! Repository`: a mixed workload had to alternate exclusive phases —
//! every query waited for every edit and vice versa. The **baseline**
//! reproduces that serialize-everything world faithfully by running the
//! same operation mix (E text updates + N×Q snapshot queries) strictly
//! one after another on a single thread. The **concurrent** run issues
//! the identical mix from N reader threads plus one writer thread
//! against the shared `&Repository`; readers pin record-version
//! snapshots while the writer rewrites the very records they scan.
//!
//! Reported per reader count: wall time, aggregate read throughput
//! (queries/s), and the throughput ratio vs the serialized baseline.
//! Check mode fails the build when the ratio at **4 readers drops below
//! 2.0×**. Correctness is asserted alongside speed: the queried `audit`
//! elements are never edited, so every racing query must return exactly
//! the pre-run answer — on a snapshot that the writer is concurrently
//! superseding record by record.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use natix::{ParallelQueryOptions, PathQuery, Repository, RepositoryOptions};
use natix_corpus::SplitMix64;
use natix_storage::{DiskBackend, MemStorage, ThrottledDisk};

const PAGE_SIZE: usize = 8192;
/// Small on purpose: the document must not fit the pool, so queries hit
/// the throttled disk and the writer's rewrites force evictions.
const BUFFER_FRAMES: usize = 48;
const READ_LATENCY_US: u64 = 1_500;
const WRITE_LATENCY_US: u64 = 3_000;
const READER_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Queries per reader thread and text updates by the writer, per run.
const QUERIES_PER_READER: usize = 10;
const EDITS: usize = 40;
/// Repetitions per reader count; the fastest run is reported.
const REPS: usize = 3;
/// Acceptance floor asserted in `--check` mode: aggregate read
/// throughput at 4 readers vs the serialize-everything baseline.
const SPEEDUP_FLOOR_AT_4: f64 = 2.0;

struct Run {
    readers: usize,
    wall_ms: f64,
    baseline_ms: f64,
    reads_per_s: f64,
    speedup_vs_serialized: f64,
    identical: bool,
}

fn order_doc(orders: usize) -> String {
    let mut g = SplitMix64::new(0xBEEF);
    let body: String = (0..orders)
        .map(|j| {
            // Every 97th order carries an <audit> marker: the readers'
            // query (`//audit`) scans every record of the document (disk
            // work proportional to document size) but matches rarely, so
            // the measured cost is the scan, not match resolution — on a
            // single-core host only overlapped disk stalls can scale.
            let audit = if j % 97 == 0 {
                format!("<audit>trail {j}</audit>")
            } else {
                String::new()
            };
            format!(
                "<order id=\"{j}\"><sku>PART-{j}</sku><qty>{}</qty>\
                 <note>note {j} {}</note>{audit}</order>",
                j % 9 + 1,
                "n".repeat(g.below(40))
            )
        })
        .collect();
    format!("<orders>{body}</orders>")
}

fn throttled_repo() -> Repository {
    let backend = Arc::new(ThrottledDisk::new(
        MemStorage::new(PAGE_SIZE).unwrap(),
        READ_LATENCY_US,
        WRITE_LATENCY_US,
    )) as Arc<dyn DiskBackend>;
    Repository::create_on_backend(
        backend,
        RepositoryOptions {
            page_size: PAGE_SIZE,
            buffer_bytes: BUFFER_FRAMES * PAGE_SIZE,
            ..RepositoryOptions::default()
        },
    )
    .unwrap()
}

/// Loads the contested document and collects the writer's targets (the
/// text nodes of every `note`) plus the readers' expected answer.
struct Setup {
    repo: Repository,
    doc: natix::DocId,
    note_texts: Vec<natix::NodeId>,
    q_sku: PathQuery,
    expected_sku: Vec<(String, String)>,
}

fn setup() -> Setup {
    let repo = throttled_repo();
    let doc = repo
        .put_xml_streaming("contested", &order_doc(12_000))
        .unwrap();
    let q_sku = PathQuery::parse("//audit").unwrap();
    let q_note_text = PathQuery::parse("//note/text()").unwrap();
    // Bind the writer's targets once, before the race (the writer is the
    // only thread touching the id map during the measured window). The
    // record-granular evaluator parses each record once — the lazy walk
    // would parse one record per node.
    let seq = ParallelQueryOptions {
        threads: 1,
        parallel_record_threshold: usize::MAX,
        ..Default::default()
    };
    let note_texts = repo.query_parallel(doc, &q_note_text, &seq).unwrap();
    let expected_sku = repo.query_content_opts(doc, &q_sku, &seq).unwrap();
    Setup {
        repo,
        doc,
        note_texts,
        q_sku,
        expected_sku,
    }
}

fn run_edit(s: &Setup, g: &mut SplitMix64, i: usize) {
    let t = s.note_texts[g.below(s.note_texts.len())];
    s.repo
        .update_text(
            s.doc,
            t,
            &format!("rewritten {i} {}", "m".repeat(g.below(48))),
        )
        .unwrap();
}

fn run_query(s: &Setup, opts: &ParallelQueryOptions) -> bool {
    s.repo.query_content_opts(s.doc, &s.q_sku, opts).unwrap() == s.expected_sku
}

/// Serialize-everything baseline: the identical operation mix, one
/// operation at a time on one thread — the old exclusive-phase world.
fn baseline_ms(readers: usize) -> f64 {
    let s = setup();
    let opts = ParallelQueryOptions {
        threads: 1,
        parallel_record_threshold: usize::MAX,
        ..Default::default()
    };
    let total_queries = readers * QUERIES_PER_READER;
    let mut g = SplitMix64::new(1);
    s.repo.clear_buffer().unwrap();
    let t0 = Instant::now();
    let mut identical = true;
    // Interleave edits among the queries, round-robin, as a fair serial
    // schedule of the same mix.
    let mut edits_done = 0usize;
    for qi in 0..total_queries {
        identical &= run_query(&s, &opts);
        while edits_done * total_queries < EDITS * (qi + 1) && edits_done < EDITS {
            run_edit(&s, &mut g, edits_done);
            edits_done += 1;
        }
    }
    while edits_done < EDITS {
        run_edit(&s, &mut g, edits_done);
        edits_done += 1;
    }
    assert!(identical, "baseline query returned a wrong answer");
    t0.elapsed().as_secs_f64() * 1e3
}

/// Concurrent run: `readers` reader threads + 1 writer thread on the
/// shared repository. Returns (wall ms, all-answers-identical).
fn concurrent_ms(readers: usize) -> (f64, bool) {
    let s = setup();
    s.repo.clear_buffer().unwrap();
    let s = &s;
    let identical = AtomicUsize::new(1);
    let identical = &identical;
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        scope.spawn(|| {
            let mut g = SplitMix64::new(1);
            for i in 0..EDITS {
                run_edit(s, &mut g, i);
            }
        });
        for r in 0..readers {
            scope.spawn(move || {
                let opts = ParallelQueryOptions {
                    threads: 1,
                    parallel_record_threshold: usize::MAX,
                    ..Default::default()
                };
                let mut ok = true;
                let _ = r;
                for _ in 0..QUERIES_PER_READER {
                    ok &= run_query(s, &opts);
                }
                if !ok {
                    identical.store(0, Ordering::Release);
                }
            });
        }
    });
    let wall = t0.elapsed().as_secs_f64() * 1e3;
    (wall, identical.load(Ordering::Acquire) == 1)
}

fn bench() -> Vec<Run> {
    let mut runs = Vec::new();
    for &readers in &READER_COUNTS {
        let mut best_wall = f64::INFINITY;
        let mut best_base = f64::INFINITY;
        let mut identical = true;
        for _ in 0..REPS {
            best_base = best_base.min(baseline_ms(readers));
            let (wall, ok) = concurrent_ms(readers);
            best_wall = best_wall.min(wall);
            identical &= ok;
        }
        let total_queries = (readers * QUERIES_PER_READER) as f64;
        let reads_per_s = total_queries / (best_wall / 1e3);
        let base_reads_per_s = total_queries / (best_base / 1e3);
        runs.push(Run {
            readers,
            wall_ms: best_wall,
            baseline_ms: best_base,
            reads_per_s,
            speedup_vs_serialized: reads_per_s / base_reads_per_s,
            identical,
        });
        let r = runs.last().unwrap();
        println!(
            "  {readers} reader(s) + 1 writer: {:>8.1} ms (serialized {:>8.1} ms)  \
             {:>7.1} reads/s  {:>5.2}x  identical: {}",
            r.wall_ms, r.baseline_ms, r.reads_per_s, r.speedup_vs_serialized, r.identical
        );
    }
    runs
}

fn write_json(runs: &[Run]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(
        s,
        "  \"benchmark\": \"mixed workload: N snapshot readers racing one writer on one document\","
    );
    let _ = writeln!(s, "  \"page_size\": {PAGE_SIZE},");
    let _ = writeln!(s, "  \"buffer_frames\": {BUFFER_FRAMES},");
    let _ = writeln!(
        s,
        "  \"disk\": \"throttled: {READ_LATENCY_US} us/page read, \
         {WRITE_LATENCY_US} us/page write\","
    );
    let _ = writeln!(
        s,
        "  \"workload\": \"{EDITS} update_text edits vs {QUERIES_PER_READER} \
         //audit content queries per reader; baseline = same mix fully serialized on one thread\","
    );
    s.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"readers\": {}, \"wall_ms\": {:.1}, \"serialized_ms\": {:.1}, \
             \"reads_per_s\": {:.2}, \"speedup_vs_serialized\": {:.2}, \
             \"identical_answers\": {}}}{}",
            r.readers,
            r.wall_ms,
            r.baseline_ms,
            r.reads_per_s,
            r.speedup_vs_serialized,
            r.identical,
            if i + 1 < runs.len() { "," } else { "" }
        );
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let check = args.iter().any(|a| a == "--check");

    println!(
        "mixed read/write workload ({PAGE_SIZE} B pages, {BUFFER_FRAMES}-frame pool, \
         throttled disk):"
    );
    let runs = bench();
    for r in &runs {
        assert!(
            r.identical,
            "{} readers: a racing query saw an answer differing from the \
             serialized result",
            r.readers
        );
    }
    let at4 = runs.iter().find(|r| r.readers == 4).unwrap();
    if check {
        assert!(
            at4.speedup_vs_serialized >= SPEEDUP_FLOOR_AT_4,
            "aggregate read throughput at 4 readers is {:.2}x the \
             serialize-everything baseline, below the {SPEEDUP_FLOOR_AT_4}x floor",
            at4.speedup_vs_serialized
        );
        println!(
            "check mode: speedup at 4 readers = {:.2}x (floor {SPEEDUP_FLOOR_AT_4}x)",
            at4.speedup_vs_serialized
        );
    } else {
        let json = write_json(&runs);
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_mixed_workload.json"
        );
        std::fs::write(path, &json).unwrap();
        println!("wrote {path}");
        println!(
            "speedup at 4 readers: {:.2}x (floor {SPEEDUP_FLOOR_AT_4}x)",
            at4.speedup_vs_serialized
        );
    }
}
