//! Thread-scaling benchmark of the parallel query subsystem.
//!
//! ```sh
//! cargo bench -p natix-bench --bench parallel_query             # writes BENCH_parallel_query.json
//! cargo bench -p natix-bench --bench parallel_query -- --check  # CI mode: asserts the scaling floor
//! ```
//!
//! Two modes per corpus (Shakespeare plays and purchase-order batches,
//! 8 KB pages, throttled disk — the same rationale as the concurrent
//! ingestion benchmark: a RAM-backed store has no stalls to overlap, so
//! reads really sleep a per-page service time and a deliberately small
//! buffer pool forces queries to miss):
//!
//! * **fan-out** — a query set over all documents through
//!   `query_documents_opts`, one worker per document, at 1/2/4/8 threads;
//! * **intra-document** — the same thread counts over a single large
//!   document through `query_parallel`, whose descendant steps split work
//!   at record boundaries (threshold low enough that the record work
//!   queue actually engages).
//!
//! Every parallel run is compared against the single-thread run: the
//! logical-node-id lists must be identical, and a sample of the matched
//! nodes is re-serialised and byte-compared. Check mode fails the build
//! when the speedup at 4 threads drops below **1.5×** in either mode on
//! either corpus.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use natix::{NodeId, ParallelQueryOptions, PathQuery, Repository, RepositoryOptions};
use natix_corpus::{generate_orders, generate_play, CorpusConfig, OrdersConfig};
use natix_storage::{DiskBackend, MemStorage, ThrottledDisk};
use natix_xml::{SymbolTable, WriteOptions};

const PAGE_SIZE: usize = 8192;
/// Small on purpose: the corpora must not fit the pool, so queries stall
/// on reads and workers have stalls to overlap.
const BUFFER_FRAMES: usize = 48;
/// The order of magnitude of the paper's late-90s measurement disk, as in
/// the concurrent-ingestion benchmark.
const READ_LATENCY_US: u64 = 1_500;
/// Writes are free: this benchmark measures the read path; loading the
/// corpora should not dominate wall time.
const WRITE_LATENCY_US: u64 = 0;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Repetitions per thread count; the fastest run is reported.
const REPS: usize = 2;
/// Acceptance floor asserted in `--check` mode, per corpus and per mode
/// (fan-out and intra-document), at 4 threads.
const SPEEDUP_FLOOR_AT_4: f64 = 1.5;
/// How many matches per query are re-serialised for the byte-identity
/// check (the full node-id lists are always compared).
const SERIALIZE_SAMPLE: usize = 64;

struct Run {
    threads: usize,
    wall_ms: f64,
    speedup: f64,
}

struct ModeRows {
    mode: &'static str,
    hits: usize,
    runs: Vec<Run>,
}

struct CorpusRows {
    corpus: &'static str,
    documents: usize,
    records: usize,
    modes: Vec<ModeRows>,
}

fn shakespeare_xmls(quick: bool) -> (&'static str, Vec<(String, String)>, String) {
    let mut syms = SymbolTable::new();
    let cfg = if quick {
        CorpusConfig {
            plays: 8,
            scale: 0.3,
            ..CorpusConfig::tiny()
        }
    } else {
        CorpusConfig {
            plays: 12,
            scale: 0.4,
            ..CorpusConfig::paper()
        }
    };
    let docs = (0..cfg.plays)
        .map(|i| {
            let p = generate_play(&cfg, i, &mut syms);
            let xml = natix_xml::write_document(&p.doc, &syms, WriteOptions::compact()).unwrap();
            (p.name, xml)
        })
        .collect();
    // One larger play for the intra-document mode.
    let big_cfg = CorpusConfig {
        plays: 1,
        scale: if quick { 1.5 } else { 3.0 },
        ..CorpusConfig::paper()
    };
    let big = generate_play(&big_cfg, 0, &mut syms);
    let big_xml = natix_xml::write_document(&big.doc, &syms, WriteOptions::compact()).unwrap();
    ("shakespeare", docs, big_xml)
}

fn orders_xmls(quick: bool) -> (&'static str, Vec<(String, String)>, String) {
    let mut syms = SymbolTable::new();
    let base = if quick {
        OrdersConfig {
            orders: 150,
            ..OrdersConfig::tiny()
        }
    } else {
        OrdersConfig {
            orders: 300,
            ..OrdersConfig::paper()
        }
    };
    let docs = (0..16)
        .map(|i| {
            let doc = generate_orders(
                &OrdersConfig {
                    seed: base.seed ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15),
                    ..base.clone()
                },
                &mut syms,
            );
            let xml = natix_xml::write_document(&doc, &syms, WriteOptions::compact()).unwrap();
            (format!("orders-{i}"), xml)
        })
        .collect();
    let big = generate_orders(
        &OrdersConfig {
            orders: if quick { 1500 } else { 3000 },
            seed: base.seed ^ 0xB16,
        },
        &mut syms,
    );
    let big_xml = natix_xml::write_document(&big, &syms, WriteOptions::compact()).unwrap();
    ("orders", docs, big_xml)
}

/// Full descendant scans — the workload the surveys name as the dominant
/// cost of read-heavy XML stores, and the shape the record work queue
/// parallelises. (Positional descendant predicates like `//X[2]` stay on
/// the lazy early-exit walk and are deliberately not measured here: an
/// eager parallel scan of the whole subtree cannot beat reading two
/// records.)
fn queries_for(corpus: &str) -> &'static [&'static str] {
    match corpus {
        "shakespeare" => &["//SPEAKER", "//LINE"],
        _ => &["//SKU", "//PRICE"],
    }
}

fn throttled_repo() -> Repository {
    let backend = Arc::new(ThrottledDisk::new(
        MemStorage::new(PAGE_SIZE).unwrap(),
        READ_LATENCY_US,
        WRITE_LATENCY_US,
    )) as Arc<dyn DiskBackend>;
    Repository::create_on_backend(
        backend,
        RepositoryOptions {
            page_size: PAGE_SIZE,
            buffer_bytes: BUFFER_FRAMES * PAGE_SIZE,
            ..RepositoryOptions::default()
        },
    )
    .unwrap()
}

/// The single-thread run's results plus the serialised bytes of a sample
/// of its matches — what every parallel run is compared against.
struct Baseline {
    results: Vec<(natix::DocId, Vec<NodeId>)>,
    sample_xml: Vec<String>,
}

/// Serialises the first `SERIALIZE_SAMPLE` matches of the first result
/// list (bounded: serialisation reads pages through the throttled disk).
fn sample_xml(repo: &Repository, results: &[(natix::DocId, Vec<NodeId>)]) -> Vec<String> {
    results
        .iter()
        .take(1)
        .flat_map(|&(doc, ref ids)| {
            ids.iter()
                .take(SERIALIZE_SAMPLE)
                .map(move |&id| repo.serialize_node(doc, id).unwrap())
        })
        .collect()
}

/// Asserts that a parallel run matches the baseline: identical node-id
/// lists, and the run's own serialisation of the sampled matches is
/// byte-identical to the bytes captured from the single-thread run.
fn assert_identical(
    repo: &Repository,
    corpus: &str,
    mode: &str,
    threads: usize,
    baseline: &Baseline,
    got: &[(natix::DocId, Vec<NodeId>)],
) {
    assert_eq!(
        got, baseline.results,
        "{corpus}/{mode}: {threads}-thread results diverge from sequential"
    );
    assert_eq!(
        sample_xml(repo, got),
        baseline.sample_xml,
        "{corpus}/{mode}: {threads}-thread result bytes diverge from sequential"
    );
}

fn bench_corpus(corpus: &'static str, docs: &[(String, String)], big_xml: &str) -> CorpusRows {
    let repo = throttled_repo();
    for res in repo.put_documents_parallel(docs, 4) {
        res.unwrap();
    }
    let loader = repo;
    let big_id = loader.put_xml_streaming("big", big_xml).unwrap();
    let repo = loader;
    let ids: Vec<natix::DocId> = docs.iter().map(|(n, _)| repo.doc_id(n).unwrap()).collect();
    let records = repo
        .subtree_record_count(big_id, repo.root(big_id).unwrap())
        .unwrap();
    let queries: Vec<PathQuery> = queries_for(corpus)
        .iter()
        .map(|q| PathQuery::parse(q).unwrap())
        .collect();

    let mut modes = Vec::new();

    // ---- fan-out: the query set over every document -------------------
    let mut baseline: Option<Baseline> = None;
    let mut baseline_ms = f64::NAN;
    let mut runs = Vec::new();
    for &threads in &THREAD_COUNTS {
        let opts = ParallelQueryOptions {
            threads,
            parallel_record_threshold: usize::MAX, // fan-out only
            ..Default::default()
        };
        let mut wall_ms = f64::INFINITY;
        let mut last: Vec<(natix::DocId, Vec<NodeId>)> = Vec::new();
        for _ in 0..REPS {
            repo.clear_buffer().unwrap();
            let t0 = Instant::now();
            last.clear();
            for q in &queries {
                for (slot, res) in repo
                    .query_documents_opts(&ids, q, &opts)
                    .into_iter()
                    .enumerate()
                {
                    last.push((ids[slot], res.unwrap()));
                }
            }
            wall_ms = wall_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        }
        match &baseline {
            None => {
                baseline_ms = wall_ms;
                baseline = Some(Baseline {
                    sample_xml: sample_xml(&repo, &last),
                    results: last,
                });
            }
            Some(base) => assert_identical(&repo, corpus, "fan-out", threads, base, &last),
        }
        runs.push(Run {
            threads,
            wall_ms,
            speedup: baseline_ms / wall_ms,
        });
        println!(
            "  {corpus:<12} fan-out    {threads} thread(s): {wall_ms:>8.1} ms  {:>5.2}x",
            runs.last().unwrap().speedup
        );
    }
    let hits = baseline
        .as_ref()
        .unwrap()
        .results
        .iter()
        .map(|(_, v)| v.len())
        .sum();
    modes.push(ModeRows {
        mode: "fan-out",
        hits,
        runs,
    });

    // ---- intra-document: the same queries over one large document -----
    let mut baseline: Option<Baseline> = None;
    let mut baseline_ms = f64::NAN;
    let mut runs = Vec::new();
    for &threads in &THREAD_COUNTS {
        let opts = ParallelQueryOptions {
            threads,
            parallel_record_threshold: 8,
            ..Default::default()
        };
        let mut wall_ms = f64::INFINITY;
        let mut last: Vec<(natix::DocId, Vec<NodeId>)> = Vec::new();
        for _ in 0..REPS {
            repo.clear_buffer().unwrap();
            let t0 = Instant::now();
            last.clear();
            for q in &queries {
                last.push((big_id, repo.query_parallel(big_id, q, &opts).unwrap()));
            }
            wall_ms = wall_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        }
        match &baseline {
            None => {
                baseline_ms = wall_ms;
                baseline = Some(Baseline {
                    sample_xml: sample_xml(&repo, &last),
                    results: last,
                });
            }
            Some(base) => assert_identical(&repo, corpus, "intra-doc", threads, base, &last),
        }
        runs.push(Run {
            threads,
            wall_ms,
            speedup: baseline_ms / wall_ms,
        });
        println!(
            "  {corpus:<12} intra-doc  {threads} thread(s): {wall_ms:>8.1} ms  {:>5.2}x",
            runs.last().unwrap().speedup
        );
    }
    let hits = baseline
        .as_ref()
        .unwrap()
        .results
        .iter()
        .map(|(_, v)| v.len())
        .sum();
    modes.push(ModeRows {
        mode: "intra-doc",
        hits,
        runs,
    });

    CorpusRows {
        corpus,
        documents: docs.len(),
        records,
        modes,
    }
}

fn write_json(quick: bool, all: &[CorpusRows]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(
        s,
        "  \"benchmark\": \"parallel path-query execution (thread scaling)\","
    );
    let _ = writeln!(s, "  \"page_size\": {PAGE_SIZE},");
    let _ = writeln!(s, "  \"buffer_frames\": {BUFFER_FRAMES},");
    let _ = writeln!(
        s,
        "  \"disk\": \"throttled: {READ_LATENCY_US} us/page read, free writes\","
    );
    let _ = writeln!(s, "  \"quick_mode\": {quick},");
    s.push_str("  \"corpora\": [\n");
    for (i, c) in all.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"corpus\": \"{}\",", c.corpus);
        let _ = writeln!(s, "      \"documents\": {},", c.documents);
        let _ = writeln!(s, "      \"big_document_records\": {},", c.records);
        s.push_str("      \"modes\": [\n");
        for (j, m) in c.modes.iter().enumerate() {
            let _ = writeln!(s, "        {{");
            let _ = writeln!(s, "          \"mode\": \"{}\",", m.mode);
            let _ = writeln!(s, "          \"hits\": {},", m.hits);
            s.push_str("          \"runs\": [\n");
            for (k, r) in m.runs.iter().enumerate() {
                let _ = writeln!(
                    s,
                    "            {{\"threads\": {}, \"wall_ms\": {:.1}, \
                     \"speedup_vs_1_thread\": {:.2}, \"identical_results\": true}}{}",
                    r.threads,
                    r.wall_ms,
                    r.speedup,
                    if k + 1 < m.runs.len() { "," } else { "" }
                );
            }
            s.push_str("          ]\n");
            let _ = writeln!(
                s,
                "        }}{}",
                if j + 1 < c.modes.len() { "," } else { "" }
            );
        }
        s.push_str("      ]\n");
        let _ = writeln!(s, "    }}{}", if i + 1 < all.len() { "," } else { "" });
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--check" || a == "--quick");
    let skip_json = args.iter().any(|a| a == "--check");

    println!(
        "parallel query scaling ({PAGE_SIZE} B pages, {BUFFER_FRAMES}-frame pool, \
         throttled disk{}):",
        if quick { ", quick" } else { "" }
    );
    let corpora = [orders_xmls(quick), shakespeare_xmls(quick)];
    let mut all = Vec::new();
    for (name, docs, big) in &corpora {
        all.push(bench_corpus(name, docs, big));
    }

    for c in &all {
        for m in &c.modes {
            let at4 = m.runs.iter().find(|r| r.threads == 4).unwrap();
            if skip_json {
                assert!(
                    at4.speedup >= SPEEDUP_FLOOR_AT_4,
                    "{}/{}: {:.2}x speedup at 4 threads fell below the \
                     {SPEEDUP_FLOOR_AT_4}x acceptance floor",
                    c.corpus,
                    m.mode,
                    at4.speedup
                );
            }
            println!(
                "{}/{}: speedup at 4 threads = {:.2}x (floor {SPEEDUP_FLOOR_AT_4}x)",
                c.corpus, m.mode, at4.speedup
            );
        }
    }
    if !skip_json {
        let json = write_json(quick, &all);
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_parallel_query.json"
        );
        std::fs::write(path, &json).unwrap();
        println!("wrote {path}");
    } else {
        println!("check mode: all floors met");
    }
}
