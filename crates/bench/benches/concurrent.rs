//! Thread-scaling benchmark of the concurrent multi-document ingestion
//! subsystem (`Repository::put_documents_parallel`).
//!
//! ```sh
//! cargo bench -p natix-bench --bench concurrent             # writes BENCH_concurrent_ingest.json
//! cargo bench -p natix-bench --bench concurrent -- --check  # CI mode: asserts the speedup floor
//! ```
//!
//! For every writer count in {1, 2, 4, 8} a fresh repository ingests the
//! same document batch (Shakespeare plays and purchase-order batches, 8 KB
//! pages), and every stored document is verified byte-identical to its
//! input on `get_xml`. Check mode fails the build when the aggregate
//! throughput at 4 writers drops below **1.8×** the single-writer run on
//! the purchase-orders corpus.
//!
//! ## Why a throttled disk
//!
//! The repository's other measurements charge I/O to the paper's
//! *simulated* DCAS disk — a cost model on a virtual clock that never
//! slows the caller down. That is useless for a concurrency benchmark: on
//! a RAM-backed store every page transfer completes in nanoseconds, so
//! there are no stalls to overlap, and on a single-core container there
//! is no CPU parallelism to observe either. The benchmark therefore runs
//! on [`ThrottledDisk`], which *sleeps* a fixed per-page service time
//! (3 ms write / 1.5 ms read — the order of magnitude of the paper's
//! late-90s measurement disk), over a deliberately small buffer pool so
//! evictions happen during the load. Because the buffer manager performs
//! all disk I/O outside its pool mutex and the allocator lock is never
//! held across page I/O, one writer's stall overlaps the other writers'
//! parsing and page fills — which is exactly the effect multi-user
//! ingestion exists to exploit, and what this benchmark quantifies. On a
//! multi-core host the same harness additionally captures CPU scaling.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use natix::{Repository, RepositoryOptions};
use natix_corpus::{generate_orders, generate_play, CorpusConfig, OrdersConfig};
use natix_storage::{DiskBackend, MemStorage, ThrottledDisk};
use natix_xml::{SymbolTable, WriteOptions};

const PAGE_SIZE: usize = 8192;
/// Small on purpose: the corpus must not fit the pool, so eviction
/// write-backs happen *during* the load and writers have stalls to
/// overlap.
const BUFFER_FRAMES: usize = 48;
const READ_LATENCY_US: u64 = 1_500;
const WRITE_LATENCY_US: u64 = 3_000;
const WRITER_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Repetitions per writer count; the fastest run is reported (absorbs
/// scheduler noise, which is material on small single-core containers).
const REPS: usize = 3;
/// Acceptance floor asserted in `--check` mode: aggregate ingest
/// throughput at 4 writers vs 1 on the purchase-orders corpus.
const SPEEDUP_FLOOR_AT_4: f64 = 1.8;

struct Run {
    writers: usize,
    wall_ms: f64,
    throughput_mb_s: f64,
    speedup: f64,
    identical: bool,
}

struct CorpusRows {
    corpus: &'static str,
    documents: usize,
    xml_bytes: usize,
    runs: Vec<Run>,
}

fn shakespeare_xmls(quick: bool) -> (&'static str, Vec<(String, String)>) {
    let mut syms = SymbolTable::new();
    let cfg = if quick {
        CorpusConfig {
            plays: 8,
            scale: 0.3,
            ..CorpusConfig::tiny()
        }
    } else {
        CorpusConfig {
            plays: 12,
            scale: 0.4,
            ..CorpusConfig::paper()
        }
    };
    let docs = (0..cfg.plays)
        .map(|i| {
            let p = generate_play(&cfg, i, &mut syms);
            let xml = natix_xml::write_document(&p.doc, &syms, WriteOptions::compact()).unwrap();
            (p.name, xml)
        })
        .collect();
    ("shakespeare", docs)
}

fn orders_xmls(quick: bool) -> (&'static str, Vec<(String, String)>) {
    let mut syms = SymbolTable::new();
    let base = if quick {
        OrdersConfig {
            orders: 200,
            ..OrdersConfig::tiny()
        }
    } else {
        OrdersConfig {
            orders: 300,
            ..OrdersConfig::paper()
        }
    };
    // Many medium documents rather than few large ones: with W writers
    // pulling from a shared queue, fine-grained jobs balance the load
    // (a straggler holding the last big document caps the speedup).
    let count = 16;
    let docs = (0..count)
        .map(|i| {
            let doc = generate_orders(
                &OrdersConfig {
                    seed: base.seed ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15),
                    ..base.clone()
                },
                &mut syms,
            );
            let xml = natix_xml::write_document(&doc, &syms, WriteOptions::compact()).unwrap();
            (format!("orders-{i}"), xml)
        })
        .collect();
    ("orders", docs)
}

fn throttled_repo() -> Repository {
    let backend = Arc::new(ThrottledDisk::new(
        MemStorage::new(PAGE_SIZE).unwrap(),
        READ_LATENCY_US,
        WRITE_LATENCY_US,
    )) as Arc<dyn DiskBackend>;
    Repository::create_on_backend(
        backend,
        RepositoryOptions {
            page_size: PAGE_SIZE,
            buffer_bytes: BUFFER_FRAMES * PAGE_SIZE,
            ..RepositoryOptions::default()
        },
    )
    .unwrap()
}

fn bench_corpus(corpus: &'static str, docs: &[(String, String)]) -> CorpusRows {
    let xml_bytes: usize = docs.iter().map(|(_, x)| x.len()).sum();
    let mut runs = Vec::new();
    let mut baseline_ms = f64::NAN;
    for &writers in &WRITER_COUNTS {
        let mut wall_ms = f64::INFINITY;
        let mut identical = true;
        for _ in 0..REPS {
            let repo = throttled_repo();
            let t0 = Instant::now();
            let results = repo.put_documents_parallel(docs, writers);
            let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
            for res in &results {
                res.as_ref().unwrap();
            }
            wall_ms = wall_ms.min(elapsed_ms);
            // Verification is outside the measured window: every stored
            // document reads back byte-identical to its input.
            identical &= docs
                .iter()
                .all(|(name, xml)| &repo.get_xml(name).unwrap() == xml);
        }
        if writers == 1 {
            baseline_ms = wall_ms;
        }
        runs.push(Run {
            writers,
            wall_ms,
            throughput_mb_s: xml_bytes as f64 / 1e6 / (wall_ms / 1e3),
            speedup: baseline_ms / wall_ms,
            identical,
        });
        println!(
            "  {corpus:<12} {writers} writer(s): {wall_ms:>8.1} ms  \
             {:>6.2} MB/s  {:>5.2}x  identical: {}",
            runs.last().unwrap().throughput_mb_s,
            runs.last().unwrap().speedup,
            identical,
        );
    }
    CorpusRows {
        corpus,
        documents: docs.len(),
        xml_bytes,
        runs,
    }
}

fn write_json(quick: bool, all: &[CorpusRows]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(
        s,
        "  \"benchmark\": \"concurrent multi-document ingestion (thread scaling)\","
    );
    let _ = writeln!(s, "  \"page_size\": {PAGE_SIZE},");
    let _ = writeln!(s, "  \"buffer_frames\": {BUFFER_FRAMES},");
    let _ = writeln!(
        s,
        "  \"disk\": \"throttled: {READ_LATENCY_US} us/page read, \
         {WRITE_LATENCY_US} us/page write, I/O outside the pool mutex\","
    );
    let _ = writeln!(s, "  \"quick_mode\": {quick},");
    s.push_str("  \"corpora\": [\n");
    for (i, c) in all.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"corpus\": \"{}\",", c.corpus);
        let _ = writeln!(s, "      \"documents\": {},", c.documents);
        let _ = writeln!(s, "      \"xml_bytes\": {},", c.xml_bytes);
        s.push_str("      \"runs\": [\n");
        for (j, r) in c.runs.iter().enumerate() {
            let _ = writeln!(
                s,
                "        {{\"writers\": {}, \"wall_ms\": {:.1}, \
                 \"throughput_mb_s\": {:.3}, \"speedup_vs_1_writer\": {:.2}, \
                 \"identical_get_xml\": {}}}{}",
                r.writers,
                r.wall_ms,
                r.throughput_mb_s,
                r.speedup,
                r.identical,
                if j + 1 < c.runs.len() { "," } else { "" }
            );
        }
        s.push_str("      ]\n");
        let _ = writeln!(s, "    }}{}", if i + 1 < all.len() { "," } else { "" });
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--check" || a == "--quick");
    let skip_json = args.iter().any(|a| a == "--check");

    println!(
        "concurrent ingestion scaling ({PAGE_SIZE} B pages, {BUFFER_FRAMES}-frame pool, \
         throttled disk{}):",
        if quick { ", quick" } else { "" }
    );
    let corpora = [orders_xmls(quick), shakespeare_xmls(quick)];
    let mut all = Vec::new();
    for (name, docs) in &corpora {
        all.push(bench_corpus(name, docs));
    }

    for c in &all {
        for r in &c.runs {
            assert!(
                r.identical,
                "{}: {}-writer ingest stored a document that does not read \
                 back byte-identical",
                c.corpus, r.writers
            );
        }
    }
    let orders = all.iter().find(|c| c.corpus == "orders").unwrap();
    let at4 = orders.runs.iter().find(|r| r.writers == 4).unwrap();
    if skip_json {
        assert!(
            at4.speedup >= SPEEDUP_FLOOR_AT_4,
            "orders: {:.2}x aggregate throughput at 4 writers fell below \
             the {SPEEDUP_FLOOR_AT_4}x acceptance floor",
            at4.speedup
        );
        println!(
            "check mode: orders speedup at 4 writers = {:.2}x (floor {SPEEDUP_FLOOR_AT_4}x)",
            at4.speedup
        );
    } else {
        let json = write_json(quick, &all);
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_concurrent_ingest.json"
        );
        std::fs::write(path, &json).unwrap();
        println!("wrote {path}");
        println!(
            "orders speedup at 4 writers: {:.2}x (floor {SPEEDUP_FLOOR_AT_4}x)",
            at4.speedup
        );
    }
}
