//! Write-ahead logging: the durability backbone of the repository.
//!
//! The paper's system (§2.1) has no recovery component — durability there is
//! via explicit checkpointing. This module adds the classical complement: an
//! append-only, CRC-framed, page-size-independent log that makes every
//! acknowledged commit survive a crash at any I/O point.
//!
//! Design (ARIES-lite, adapted to the version store's copy-on-write model):
//!
//! * **Undo** — the version store's pre-images ([`WalRecord::PreImage`]) and
//!   creation notices ([`WalRecord::Created`]) are logged when a record is
//!   first superseded or created by an update operation, *before* the page
//!   bytes change. Recovery rolls back operations with no commit record by
//!   restoring pre-images in reverse LSN order.
//! * **Redo** — at publish time the commit hook captures a full image of
//!   every page the operation touched ([`WalRecord::PageImage`]) followed by
//!   a [`WalRecord::Commit`]. Recovery replays committed images in LSN
//!   order. Full-page images sidestep torn intra-op page states: the image
//!   is self-consistent by construction.
//! * **WAL rule** — the buffer manager calls [`Wal::flush_buffered`] before
//!   writing any dirty frame to disk, so undo information for a stolen page
//!   is always durable before the page itself.
//! * **Group commit** — [`Wal::sync_to`] batches concurrent committers
//!   behind one leader that writes and fsyncs the accumulated buffer while
//!   followers wait on the durable-LSN watermark ([`WalSyncMode::Group`]),
//!   or serialises one fsync per commit ([`WalSyncMode::PerCommit`]).
//!
//! LSNs are byte offsets into the logical log. [`Wal::append`] returns the
//! *end* offset of the appended record (the sync target that makes it
//! durable); the recovery scan yields *start* offsets (stable positions for
//! ordering). The log is truncated only by a quiesced checkpoint, which
//! rewrites it as a single [`WalRecord::Checkpoint`] carrying an allocator
//! snapshot and the document directory, so analysis never trusts the
//! (possibly torn) header page after a crash.

use std::cell::{Cell, RefCell};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex, TrackedAtomicBool, TrackedAtomicU64};

use crate::disk::FaultControl;
use crate::error::{StorageError, StorageResult};
use crate::rid::{PageId, Rid};

// ---------------------------------------------------------------------------
// CRC32 (IEEE, reflected) — hand-rolled: the build is dependency-free.
// ---------------------------------------------------------------------------

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = build_crc_table();

/// CRC32 over `bytes` (IEEE polynomial, as used by zip/png).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// Thread-local logging context.
// ---------------------------------------------------------------------------

thread_local! {
    static SUPPRESS_DEPTH: Cell<u32> = const { Cell::new(0) };
    static COMMIT_ERROR: RefCell<Option<StorageError>> = const { RefCell::new(None) };
}

/// True while the current thread runs with WAL logging suppressed
/// (checkpointing, recovery, catalog persistence — activity that is
/// reconstructed from the checkpoint snapshot rather than replayed).
pub fn log_suppressed() -> bool {
    SUPPRESS_DEPTH.with(|d| d.get() > 0)
}

/// RAII guard suppressing WAL appends on the current thread. Nesting is
/// counted. Only the thread holding the guard is affected — concurrent
/// user operations on other threads keep logging.
pub struct SuppressLogging;

impl SuppressLogging {
    /// Enters a suppressed region.
    pub fn new() -> SuppressLogging {
        SUPPRESS_DEPTH.with(|d| d.set(d.get() + 1));
        SuppressLogging
    }
}

impl Default for SuppressLogging {
    fn default() -> Self {
        SuppressLogging::new()
    }
}

impl Drop for SuppressLogging {
    fn drop(&mut self) {
        SUPPRESS_DEPTH.with(|d| d.set(d.get() - 1));
    }
}

/// Records an error raised inside the commit hook (which runs in a `Drop`
/// impl and cannot return one). The next durability gate on this thread
/// picks it up via [`take_commit_error`] and surfaces it to the caller.
pub fn set_commit_error(e: StorageError) {
    COMMIT_ERROR.with(|c| {
        let mut slot = c.borrow_mut();
        if slot.is_none() {
            *slot = Some(e);
        }
    });
}

/// Takes the pending commit-hook error for this thread, if any.
pub fn take_commit_error() -> Option<StorageError> {
    COMMIT_ERROR.with(|c| c.borrow_mut().take())
}

// ---------------------------------------------------------------------------
// Record encoding.
// ---------------------------------------------------------------------------

const KIND_CHECKPOINT: u8 = 1;
const KIND_PRE_IMAGE: u8 = 2;
const KIND_CREATED: u8 = 3;
const KIND_PAGE_IMAGE: u8 = 4;
const KIND_COMMIT: u8 = 5;
const KIND_CATALOG: u8 = 6;
const KIND_ALLOC: u8 = 7;
const KIND_FREE: u8 = 8;
const KIND_SEG_CREATE: u8 = 9;
const KIND_DOC_DELETE: u8 = 10;
const KIND_SYMBOLS: u8 = 11;

/// Per-segment part of a [`StoreSnapshot`]: name plus the free-space
/// inventory (page id, cached free bytes).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SegmentSnapshot {
    /// Segment name (id is positional).
    pub name: String,
    /// FSI entries at snapshot time.
    pub pages: Vec<(PageId, u16)>,
}

/// Allocator + directory state embedded in a [`WalRecord::Checkpoint`].
///
/// After a crash the header page, free-list chain and space maps are
/// untrustworthy (they are ordinary unlogged pages); recovery rebuilds the
/// storage manager from this snapshot plus the post-checkpoint log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreSnapshot {
    /// Committed page images at or above this LSN must be replayed; below
    /// it, the checkpoint's flush already put them in the base file.
    pub redo_horizon: u64,
    /// Allocation high-water mark.
    pub next_unallocated: PageId,
    /// Pages on the free list, head first.
    pub free_list: Vec<PageId>,
    /// Segments in id order.
    pub segments: Vec<SegmentSnapshot>,
    /// The 64-byte user-root area (catalog bootstrap).
    pub user_root: Vec<u8>,
    /// Opaque document-directory payload, encoded by the repository layer.
    pub catalog: Vec<u8>,
}

/// Sentinel segment id in [`WalRecord::Alloc`]: the page belongs to no
/// free-space inventory.
pub const NO_ALLOC_SEGMENT: u16 = u16::MAX;

/// One logical log record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalRecord {
    /// Analysis starting point: allocator snapshot + directory.
    Checkpoint(Box<StoreSnapshot>),
    /// Undo: the payload (and page type table) a record held before
    /// operation `op` first overwrote or deleted it.
    PreImage {
        /// Owning update operation.
        op: u64,
        /// Record address.
        rid: Rid,
        /// Encoded node-type table of the record's page at deposit time.
        table: Vec<u8>,
        /// Record payload before the change.
        bytes: Vec<u8>,
    },
    /// Undo: operation `op` created this record (rollback deletes it).
    Created {
        /// Owning update operation.
        op: u64,
        /// Record address.
        rid: Rid,
    },
    /// Redo: full image of a page touched by `op`, captured at publish.
    PageImage {
        /// Owning update operation.
        op: u64,
        /// Page the image belongs to.
        page: PageId,
        /// Complete page bytes (page-size long).
        image: Vec<u8>,
    },
    /// Operation `op` committed; its page images are authoritative.
    Commit {
        /// The committed operation.
        op: u64,
    },
    /// Directory update. `op == 0` applies unconditionally (document
    /// registrations — logged only after their content committed);
    /// otherwise it applies only if `op` committed.
    Catalog {
        /// Owning operation, or 0 for unconditional.
        op: u64,
        /// Opaque directory payload (repository layer format).
        payload: Vec<u8>,
    },
    /// A page left the free pool / extended the file.
    Alloc {
        /// The allocated page.
        page: PageId,
        /// Segment whose free-space inventory lists the page (positional
        /// id, see [`SegCreate`](WalRecord::SegCreate)), or
        /// [`NO_ALLOC_SEGMENT`] for pages outside every inventory
        /// (space-map chains). Recovery re-adopts surviving allocations
        /// into their inventory from this.
        segment: u16,
    },
    /// A page returned to the free pool.
    Free {
        /// The freed page.
        page: PageId,
    },
    /// A segment was appended to the directory (ids are positional).
    SegCreate {
        /// Segment name.
        name: String,
    },
    /// Document `name` was dropped by operation `op` (applied only if the
    /// operation committed).
    DocDelete {
        /// Owning update operation.
        op: u64,
        /// Document name removed from the directory.
        name: String,
    },
    /// Label-alphabet growth: `rows` are the `(kind code, name)` rows at
    /// ids `base..base + rows.len()`. Appended by the commit hook whenever
    /// a committing operation's alphabet has grown past the logged
    /// watermark; applied **unconditionally** on recovery — label ids are
    /// assigned sequentially across operations, so a loser's labels must
    /// keep their slots for every later committed id to stay aligned.
    Symbols {
        /// Absolute label id of the first row.
        base: u32,
        /// `(kind code, name)` per new label (codes are the repository
        /// directory codec's, opaque to this layer).
        rows: Vec<(u8, String)>,
    },
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> StorageResult<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(StorageError::Corrupt("log record truncated".into()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u16(&mut self) -> StorageResult<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> StorageResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> StorageResult<u64> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn bytes(&mut self) -> StorageResult<Vec<u8>> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    fn string(&mut self) -> StorageResult<String> {
        String::from_utf8(self.bytes()?)
            .map_err(|_| StorageError::Corrupt("log record holds invalid UTF-8".into()))
    }
}

impl StoreSnapshot {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.redo_horizon);
        put_u32(out, self.next_unallocated);
        put_u32(out, self.free_list.len() as u32);
        for &p in &self.free_list {
            put_u32(out, p);
        }
        put_u16(out, self.segments.len() as u16);
        for seg in &self.segments {
            put_bytes(out, seg.name.as_bytes());
            put_u32(out, seg.pages.len() as u32);
            for &(p, f) in &seg.pages {
                put_u32(out, p);
                put_u16(out, f);
            }
        }
        put_bytes(out, &self.user_root);
        put_bytes(out, &self.catalog);
    }

    fn decode(r: &mut Reader<'_>) -> StorageResult<StoreSnapshot> {
        let redo_horizon = r.u64()?;
        let next_unallocated = r.u32()?;
        let nfree = r.u32()? as usize;
        let mut free_list = Vec::with_capacity(nfree);
        for _ in 0..nfree {
            free_list.push(r.u32()?);
        }
        let nseg = r.u16()? as usize;
        let mut segments = Vec::with_capacity(nseg);
        for _ in 0..nseg {
            let name = r.string()?;
            let npages = r.u32()? as usize;
            let mut pages = Vec::with_capacity(npages);
            for _ in 0..npages {
                let p = r.u32()?;
                let f = r.u16()?;
                pages.push((p, f));
            }
            segments.push(SegmentSnapshot { name, pages });
        }
        let user_root = r.bytes()?;
        let catalog = r.bytes()?;
        Ok(StoreSnapshot {
            redo_horizon,
            next_unallocated,
            free_list,
            segments,
            user_root,
            catalog,
        })
    }
}

impl WalRecord {
    fn encode_body(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WalRecord::Checkpoint(s) => {
                out.push(KIND_CHECKPOINT);
                s.encode(&mut out);
            }
            WalRecord::PreImage {
                op,
                rid,
                table,
                bytes,
            } => {
                out.push(KIND_PRE_IMAGE);
                put_u64(&mut out, *op);
                put_u32(&mut out, rid.page);
                put_u16(&mut out, rid.slot);
                put_bytes(&mut out, table);
                put_bytes(&mut out, bytes);
            }
            WalRecord::Created { op, rid } => {
                out.push(KIND_CREATED);
                put_u64(&mut out, *op);
                put_u32(&mut out, rid.page);
                put_u16(&mut out, rid.slot);
            }
            WalRecord::PageImage { op, page, image } => {
                out.push(KIND_PAGE_IMAGE);
                put_u64(&mut out, *op);
                put_u32(&mut out, *page);
                put_bytes(&mut out, image);
            }
            WalRecord::Commit { op } => {
                out.push(KIND_COMMIT);
                put_u64(&mut out, *op);
            }
            WalRecord::Catalog { op, payload } => {
                out.push(KIND_CATALOG);
                put_u64(&mut out, *op);
                put_bytes(&mut out, payload);
            }
            WalRecord::Alloc { page, segment } => {
                out.push(KIND_ALLOC);
                put_u32(&mut out, *page);
                put_u16(&mut out, *segment);
            }
            WalRecord::Free { page } => {
                out.push(KIND_FREE);
                put_u32(&mut out, *page);
            }
            WalRecord::SegCreate { name } => {
                out.push(KIND_SEG_CREATE);
                put_bytes(&mut out, name.as_bytes());
            }
            WalRecord::Symbols { base, rows } => {
                out.push(KIND_SYMBOLS);
                put_u32(&mut out, *base);
                put_u32(&mut out, rows.len() as u32);
                for (kind, name) in rows {
                    out.push(*kind);
                    put_bytes(&mut out, name.as_bytes());
                }
            }
            WalRecord::DocDelete { op, name } => {
                out.push(KIND_DOC_DELETE);
                put_u64(&mut out, *op);
                put_bytes(&mut out, name.as_bytes());
            }
        }
        out
    }

    /// Frames the record as `[crc32 u32][len u32][kind u8 | payload]`.
    pub fn encode_frame(&self) -> Vec<u8> {
        let body = self.encode_body();
        let mut out = Vec::with_capacity(8 + body.len());
        put_u32(&mut out, crc32(&body));
        put_u32(&mut out, body.len() as u32);
        out.extend_from_slice(&body);
        out
    }

    fn decode_body(body: &[u8]) -> StorageResult<WalRecord> {
        if body.is_empty() {
            return Err(StorageError::Corrupt("empty log record".into()));
        }
        let kind = body[0];
        let mut r = Reader::new(&body[1..]);
        Ok(match kind {
            KIND_CHECKPOINT => WalRecord::Checkpoint(Box::new(StoreSnapshot::decode(&mut r)?)),
            KIND_PRE_IMAGE => {
                let op = r.u64()?;
                let page = r.u32()?;
                let slot = r.u16()?;
                let table = r.bytes()?;
                let bytes = r.bytes()?;
                WalRecord::PreImage {
                    op,
                    rid: Rid::new(page, slot),
                    table,
                    bytes,
                }
            }
            KIND_CREATED => {
                let op = r.u64()?;
                let page = r.u32()?;
                let slot = r.u16()?;
                WalRecord::Created {
                    op,
                    rid: Rid::new(page, slot),
                }
            }
            KIND_PAGE_IMAGE => {
                let op = r.u64()?;
                let page = r.u32()?;
                let image = r.bytes()?;
                WalRecord::PageImage { op, page, image }
            }
            KIND_COMMIT => WalRecord::Commit { op: r.u64()? },
            KIND_CATALOG => {
                let op = r.u64()?;
                let payload = r.bytes()?;
                WalRecord::Catalog { op, payload }
            }
            KIND_ALLOC => {
                let page = r.u32()?;
                let segment = r.u16()?;
                WalRecord::Alloc { page, segment }
            }
            KIND_FREE => WalRecord::Free { page: r.u32()? },
            KIND_SEG_CREATE => WalRecord::SegCreate { name: r.string()? },
            KIND_SYMBOLS => {
                let base = r.u32()?;
                let n = r.u32()? as usize;
                let mut rows = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    let kind = r.take(1)?[0];
                    rows.push((kind, r.string()?));
                }
                WalRecord::Symbols { base, rows }
            }
            KIND_DOC_DELETE => {
                let op = r.u64()?;
                let name = r.string()?;
                WalRecord::DocDelete { op, name }
            }
            k => {
                return Err(StorageError::Corrupt(format!(
                    "unknown log record kind {k}"
                )))
            }
        })
    }
}

/// Parses a raw log image into `(start LSN, record)` pairs, tolerating a
/// torn tail: scanning stops at the first frame whose length or CRC does
/// not check out, and the second element returns the valid prefix length.
pub fn parse_log(bytes: &[u8]) -> (Vec<(u64, WalRecord)>, u64) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos + 8 <= bytes.len() {
        let crc = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]]);
        let len = u32::from_le_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
        ]) as usize;
        if len == 0 || pos + 8 + len > bytes.len() {
            break;
        }
        let body = &bytes[pos + 8..pos + 8 + len];
        if crc32(body) != crc {
            break;
        }
        match WalRecord::decode_body(body) {
            Ok(rec) => records.push((pos as u64, rec)),
            Err(_) => break,
        }
        pos += 8 + len;
    }
    (records, pos as u64)
}

// ---------------------------------------------------------------------------
// Log devices.
// ---------------------------------------------------------------------------

/// Byte-append device under the log. Separates log I/O from page I/O so the
/// crash harness can model an OS-cached log whose unsynced tail dies with
/// the process.
pub trait LogDevice: Send + Sync {
    /// Appends bytes at the end of the log.
    fn write(&self, bytes: &[u8]) -> StorageResult<()>;
    /// Makes all previously written bytes durable.
    fn sync(&self) -> StorageResult<()>;
    /// Reads the entire log image (recovery).
    fn read_all(&self) -> StorageResult<Vec<u8>>;
    /// Truncates the log to `len` bytes (tail cleanup / checkpoint reset).
    fn truncate(&self, len: u64) -> StorageResult<()>;
    /// Current log length in bytes (written, not necessarily durable).
    fn len(&self) -> u64;
    /// True when no bytes have been written.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// A shared handle is itself a device: the crash harness keeps an
// `Arc<MemLogDevice>` to inspect the durable image across a simulated
// reboot while the repository owns a boxed clone of the same handle.
impl<T: LogDevice + ?Sized> LogDevice for Arc<T> {
    fn write(&self, bytes: &[u8]) -> StorageResult<()> {
        (**self).write(bytes)
    }
    fn sync(&self) -> StorageResult<()> {
        (**self).sync()
    }
    fn read_all(&self) -> StorageResult<Vec<u8>> {
        (**self).read_all()
    }
    fn truncate(&self, len: u64) -> StorageResult<()> {
        (**self).truncate(len)
    }
    fn len(&self) -> u64 {
        (**self).len()
    }
}

/// File-backed log device — the sidecar `<repo>.wal` file.
pub struct FileLogDevice {
    file: Mutex<File>,
    len: AtomicU64,
}

impl FileLogDevice {
    /// Opens (creating if missing) the log file at `path`.
    pub fn open(path: &Path) -> StorageResult<FileLogDevice> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        Ok(FileLogDevice {
            file: Mutex::with_rank(&parking_lot::rank::DEVICE, file),
            len: AtomicU64::new(len),
        })
    }

    /// The conventional sidecar path for a repository file.
    pub fn sidecar_path(repo_path: &Path) -> std::path::PathBuf {
        let mut os = repo_path.as_os_str().to_owned();
        os.push(".wal");
        std::path::PathBuf::from(os)
    }
}

impl LogDevice for FileLogDevice {
    fn write(&self, bytes: &[u8]) -> StorageResult<()> {
        let mut f = self.file.lock();
        f.seek(SeekFrom::Start(self.len.load(Ordering::Acquire)))?;
        f.write_all(bytes)?;
        self.len.fetch_add(bytes.len() as u64, Ordering::AcqRel);
        Ok(())
    }

    fn sync(&self) -> StorageResult<()> {
        self.file.lock().sync_data()?;
        Ok(())
    }

    fn read_all(&self) -> StorageResult<Vec<u8>> {
        let mut f = self.file.lock();
        f.seek(SeekFrom::Start(0))?;
        let mut out = Vec::new();
        f.read_to_end(&mut out)?;
        Ok(out)
    }

    fn truncate(&self, len: u64) -> StorageResult<()> {
        let f = self.file.lock();
        f.set_len(len)?;
        f.sync_data()?;
        self.len.store(len, Ordering::Release);
        Ok(())
    }

    fn len(&self) -> u64 {
        self.len.load(Ordering::Acquire)
    }
}

struct MemLogState {
    /// Written but not fsynced — lost on a crash.
    staging: Vec<u8>,
    /// Fsynced — survives a crash.
    durable: Vec<u8>,
}

/// In-memory log device modelling an OS-cached file: `write` lands in a
/// staging buffer, `sync` promotes it to the durable image, and a crash
/// exposes only the durable image. Supports fault injection (shared write
/// budget with [`crate::disk::FaultDisk`]) and a configurable fsync
/// latency for durability benchmarks.
pub struct MemLogDevice {
    state: Mutex<MemLogState>,
    fault: Option<Arc<FaultControl>>,
    sync_latency: Duration,
}

impl MemLogDevice {
    /// A plain in-memory log with no faults and no latency.
    pub fn new() -> MemLogDevice {
        MemLogDevice {
            state: Mutex::with_rank(
                &parking_lot::rank::DEVICE,
                MemLogState {
                    staging: Vec::new(),
                    durable: Vec::new(),
                },
            ),
            fault: None,
            sync_latency: Duration::ZERO,
        }
    }

    /// Attaches a fault controller: each `write` consumes one unit of the
    /// shared budget, and once exhausted every write and sync fails.
    pub fn with_fault(mut self, fault: Arc<FaultControl>) -> MemLogDevice {
        self.fault = Some(fault);
        self
    }

    /// Charges `latency` on every `sync` (models fsync cost in benches).
    pub fn with_sync_latency(mut self, latency: Duration) -> MemLogDevice {
        self.sync_latency = latency;
        self
    }

    /// The durable image — what survives a crash at this instant.
    pub fn durable_bytes(&self) -> Vec<u8> {
        self.state.lock().durable.clone()
    }

    /// Replaces the durable image (harness: reopen from a crash snapshot).
    pub fn restore(&self, bytes: Vec<u8>) {
        let mut st = self.state.lock();
        st.durable = bytes;
        st.staging.clear();
    }
}

impl Default for MemLogDevice {
    fn default() -> Self {
        MemLogDevice::new()
    }
}

impl LogDevice for MemLogDevice {
    fn write(&self, bytes: &[u8]) -> StorageResult<()> {
        if let Some(f) = &self.fault {
            f.consume_write()?;
        }
        self.state.lock().staging.extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&self) -> StorageResult<()> {
        if let Some(f) = &self.fault {
            f.check_alive()?;
        }
        if !self.sync_latency.is_zero() {
            std::thread::sleep(self.sync_latency);
        }
        let mut st = self.state.lock();
        let staged = std::mem::take(&mut st.staging);
        st.durable.extend_from_slice(&staged);
        Ok(())
    }

    fn read_all(&self) -> StorageResult<Vec<u8>> {
        // Recovery reads only what an fsync made durable: unsynced bytes
        // belong to commits that were never acknowledged.
        Ok(self.state.lock().durable.clone())
    }

    fn truncate(&self, len: u64) -> StorageResult<()> {
        let mut st = self.state.lock();
        st.durable.truncate(len as usize);
        st.staging.clear();
        Ok(())
    }

    fn len(&self) -> u64 {
        let st = self.state.lock();
        (st.durable.len() + st.staging.len()) as u64
    }
}

// ---------------------------------------------------------------------------
// The Wal.
// ---------------------------------------------------------------------------

/// How commit gates pay for durability.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum WalSyncMode {
    /// Every commit issues its own fsync (serialised).
    PerCommit,
    /// Concurrent commits batch behind one leader fsync.
    #[default]
    Group,
}

struct WalCore {
    /// Appended records not yet handed to the device.
    buf: Vec<u8>,
    /// Device length == log offset where `buf` starts.
    buf_base: u64,
    /// A leader is currently writing + syncing outside the lock.
    syncing: bool,
}

/// The write-ahead log: an append buffer over a [`LogDevice`] with
/// group-commit synchronisation and a durable-LSN watermark.
pub struct Wal {
    device: Box<dyn LogDevice>,
    core: Mutex<WalCore>,
    cond: Condvar,
    appended: TrackedAtomicU64,
    durable: TrackedAtomicU64,
    dead: TrackedAtomicBool,
    mode: WalSyncMode,
}

impl Wal {
    /// Wraps a device whose existing content (if any) is a valid log — the
    /// caller truncates any torn tail first (see [`parse_log`]).
    pub fn new(device: Box<dyn LogDevice>, mode: WalSyncMode) -> Wal {
        let len = device.len();
        Wal {
            device,
            core: Mutex::with_rank(
                &parking_lot::rank::WAL,
                WalCore {
                    buf: Vec::new(),
                    buf_base: len,
                    syncing: false,
                },
            ),
            cond: Condvar::new(),
            appended: TrackedAtomicU64::new(len),
            durable: TrackedAtomicU64::new(len),
            dead: TrackedAtomicBool::new(false),
            mode,
        }
    }

    /// End offset of the last appended record — the target a durability
    /// gate passes to [`sync_to`](Wal::sync_to).
    pub fn appended_lsn(&self) -> u64 {
        self.appended.load(Ordering::Acquire)
    }

    /// Durable watermark: every log byte below this offset is fsynced.
    pub fn durable_lsn(&self) -> u64 {
        self.durable.load(Ordering::Acquire)
    }

    /// The commit synchronisation mode.
    pub fn sync_mode(&self) -> WalSyncMode {
        self.mode
    }

    fn dead_error() -> StorageError {
        StorageError::Io(std::io::Error::other("log device failed"))
    }

    /// Marks the log failed: every later durability gate errors out. Called
    /// when a commit hook could not capture its redo images — the log no
    /// longer reflects published state, so no further commit may be
    /// acknowledged (recovery rolls the un-logged operations back).
    pub fn poison(&self) {
        self.dead.store(true, Ordering::Release);
        self.cond.notify_all();
    }

    /// Appends a record to the log buffer (no I/O). Returns the record's
    /// end offset. A no-op returning the current end offset while the
    /// thread holds a [`SuppressLogging`] guard.
    pub fn append(&self, rec: &WalRecord) -> u64 {
        if log_suppressed() {
            return self.appended_lsn();
        }
        let frame = rec.encode_frame();
        let mut core = self.core.lock();
        core.buf.extend_from_slice(&frame);
        let end = core.buf_base + core.buf.len() as u64;
        self.appended.store(end, Ordering::Release);
        end
    }

    /// Appends the redo images for a committing operation followed by its
    /// commit record, contiguously. Each image is stamped with its own
    /// record's start LSN (truncated to 32 bits) in the page-header LSN
    /// field before framing, so replayed pages carry the LSN that wrote
    /// them. Returns the commit record's end offset.
    pub fn append_commit_batch(&self, op: u64, images: Vec<(PageId, Vec<u8>)>) -> u64 {
        if log_suppressed() {
            return self.appended_lsn();
        }
        let mut core = self.core.lock();
        for (page, mut image) in images {
            let start = core.buf_base + core.buf.len() as u64;
            if image.len() >= 16 {
                image[12..16].copy_from_slice(&(start as u32).to_le_bytes());
            }
            let frame = WalRecord::PageImage { op, page, image }.encode_frame();
            core.buf.extend_from_slice(&frame);
        }
        let frame = WalRecord::Commit { op }.encode_frame();
        core.buf.extend_from_slice(&frame);
        let end = core.buf_base + core.buf.len() as u64;
        self.appended.store(end, Ordering::Release);
        end
    }

    fn write_and_sync(&self, batch: &[u8]) -> StorageResult<()> {
        #[cfg(feature = "lockdep")]
        let _io = parking_lot::lockdep::io_region("wal.write-and-sync");
        if !batch.is_empty() {
            self.device.write(batch)?;
        }
        self.device.sync()
    }

    /// Waits until the log is durable up to `target`.
    ///
    /// In [`WalSyncMode::Group`], one waiter becomes the leader: it takes
    /// the whole append buffer, writes and fsyncs it outside the lock, and
    /// wakes the others — commits that appended before the batch was taken
    /// ride the same fsync. In [`WalSyncMode::PerCommit`], every caller
    /// issues its own fsync, serialised.
    pub fn sync_to(&self, target: u64) -> StorageResult<()> {
        match self.mode {
            WalSyncMode::Group => self.sync_group(target),
            WalSyncMode::PerCommit => self.sync_own(),
        }
    }

    /// Makes everything appended so far durable — the WAL rule hook called
    /// by the buffer manager before any dirty page write-back. Cheap when
    /// there is nothing to flush.
    pub fn flush_buffered(&self) -> StorageResult<()> {
        let target = self.appended.load(Ordering::Acquire);
        if self.durable.load(Ordering::Acquire) >= target {
            if self.dead.load(Ordering::Acquire) {
                return Err(Self::dead_error());
            }
            return Ok(());
        }
        self.sync_group(target)
    }

    fn sync_group(&self, target: u64) -> StorageResult<()> {
        let mut core = self.core.lock();
        loop {
            if self.dead.load(Ordering::Acquire) {
                return Err(Self::dead_error());
            }
            if self.durable.load(Ordering::Acquire) >= target {
                return Ok(());
            }
            if core.syncing {
                core = self.cond.wait(core);
                continue;
            }
            core.syncing = true;
            let batch = std::mem::take(&mut core.buf);
            let new_end = core.buf_base + batch.len() as u64;
            core.buf_base = new_end;
            drop(core);
            let res = self.write_and_sync(&batch);
            core = self.core.lock();
            core.syncing = false;
            match res {
                Ok(()) => self.durable.store(new_end, Ordering::Release),
                Err(e) => {
                    self.dead.store(true, Ordering::Release);
                    self.cond.notify_all();
                    return Err(e);
                }
            }
            self.cond.notify_all();
        }
    }

    fn sync_own(&self) -> StorageResult<()> {
        let mut core = self.core.lock();
        while core.syncing {
            core = self.cond.wait(core);
        }
        if self.dead.load(Ordering::Acquire) {
            return Err(Self::dead_error());
        }
        core.syncing = true;
        let batch = std::mem::take(&mut core.buf);
        let new_end = core.buf_base + batch.len() as u64;
        core.buf_base = new_end;
        drop(core);
        let res = self.write_and_sync(&batch);
        let mut core = self.core.lock();
        core.syncing = false;
        match &res {
            Ok(()) => self.durable.store(new_end, Ordering::Release),
            Err(_) => self.dead.store(true, Ordering::Release),
        }
        self.cond.notify_all();
        drop(core);
        res
    }

    /// Atomically replaces the whole log with a single checkpoint record —
    /// the quiesced-checkpoint fast path. Succeeds only when the log state
    /// still matches `expected` (appended == durable == expected) *and*
    /// `quiesced` holds: any concurrent append or unsynced tail aborts with
    /// `Ok(false)` and the caller falls back to appending a fuzzy
    /// checkpoint. `quiesced` is evaluated under the log's append lock, so
    /// an update operation that has started but not yet logged anything can
    /// veto the truncation before its first record could land in the old
    /// log (appends serialise on the same lock).
    pub fn try_truncate_reset(
        &self,
        expected: u64,
        quiesced: &dyn Fn() -> bool,
        checkpoint: &WalRecord,
    ) -> StorageResult<bool> {
        let mut core = self.core.lock();
        while core.syncing {
            core = self.cond.wait(core);
        }
        if self.dead.load(Ordering::Acquire) {
            return Err(Self::dead_error());
        }
        let appended = core.buf_base + core.buf.len() as u64;
        if appended != expected || self.durable.load(Ordering::Acquire) != expected || !quiesced() {
            return Ok(false);
        }
        #[cfg(feature = "lockdep")]
        let _io = parking_lot::lockdep::io_region("wal.truncate-reset");
        self.device.truncate(0)?;
        core.buf.clear();
        core.buf_base = 0;
        let frame = checkpoint.encode_frame();
        self.device.write(&frame)?;
        self.device.sync()?;
        core.buf_base = frame.len() as u64;
        self.appended.store(frame.len() as u64, Ordering::Release);
        self.durable.store(frame.len() as u64, Ordering::Release);
        Ok(true)
    }

    /// Reads and parses the durable log (recovery entry point), truncating
    /// any torn tail so future appends land after the last valid record.
    pub fn read_log(device: &dyn LogDevice) -> StorageResult<Vec<(u64, WalRecord)>> {
        let bytes = device.read_all()?;
        let (records, valid) = parse_log(&bytes);
        if valid < bytes.len() as u64 {
            device.truncate(valid)?;
        }
        Ok(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Checkpoint(Box::new(StoreSnapshot {
                redo_horizon: 7,
                next_unallocated: 42,
                free_list: vec![3, 9],
                segments: vec![SegmentSnapshot {
                    name: "documents".into(),
                    pages: vec![(5, 100), (6, 0)],
                }],
                user_root: vec![1u8; 64],
                catalog: b"dir".to_vec(),
            })),
            WalRecord::PreImage {
                op: 11,
                rid: Rid::new(5, 2),
                table: vec![1, 2, 3],
                bytes: vec![9; 40],
            },
            WalRecord::Created {
                op: 11,
                rid: Rid::new(6, 0),
            },
            WalRecord::PageImage {
                op: 11,
                page: 5,
                image: vec![0xAB; 512],
            },
            WalRecord::Commit { op: 11 },
            WalRecord::Catalog {
                op: 0,
                payload: b"cat".to_vec(),
            },
            WalRecord::Alloc {
                page: 17,
                segment: 2,
            },
            WalRecord::Free { page: 18 },
            WalRecord::SegCreate {
                name: "ingest0".into(),
            },
            WalRecord::DocDelete {
                op: 12,
                name: "gone".into(),
            },
            WalRecord::Symbols {
                base: 4,
                rows: vec![(0, "SPEECH".into()), (1, "id".into())],
            },
        ]
    }

    #[test]
    fn records_roundtrip_through_frames() {
        let mut log = Vec::new();
        for r in sample_records() {
            log.extend_from_slice(&r.encode_frame());
        }
        let (parsed, valid) = parse_log(&log);
        assert_eq!(valid, log.len() as u64);
        let expect = sample_records();
        assert_eq!(parsed.len(), expect.len());
        for ((_, got), want) in parsed.iter().zip(&expect) {
            assert_eq!(got, want);
        }
    }

    #[test]
    fn torn_tail_is_tolerated() {
        let mut log = Vec::new();
        for r in sample_records() {
            log.extend_from_slice(&r.encode_frame());
        }
        let full = log.len();
        // Append a torn record (cut mid-payload).
        let extra = WalRecord::Commit { op: 99 }.encode_frame();
        log.extend_from_slice(&extra[..extra.len() - 3]);
        let (parsed, valid) = parse_log(&log);
        assert_eq!(valid, full as u64);
        assert_eq!(parsed.len(), sample_records().len());
        // Corrupt a byte inside the *last* full record instead.
        let mut log2: Vec<u8> = Vec::new();
        for r in sample_records() {
            log2.extend_from_slice(&r.encode_frame());
        }
        let n = log2.len();
        log2[n - 1] ^= 0xFF;
        let (parsed2, _) = parse_log(&log2);
        assert_eq!(parsed2.len(), sample_records().len() - 1);
    }

    #[test]
    fn append_and_sync_watermarks() {
        let wal = Wal::new(Box::new(MemLogDevice::new()), WalSyncMode::Group);
        assert_eq!(wal.appended_lsn(), 0);
        let lsn = wal.append(&WalRecord::Commit { op: 1 });
        assert_eq!(wal.appended_lsn(), lsn);
        assert_eq!(wal.durable_lsn(), 0);
        wal.sync_to(lsn).unwrap();
        assert_eq!(wal.durable_lsn(), lsn);
        // flush_buffered is a no-op when already durable.
        wal.flush_buffered().unwrap();
    }

    #[test]
    fn suppressed_appends_are_dropped() {
        let wal = Wal::new(Box::new(MemLogDevice::new()), WalSyncMode::Group);
        {
            let _g = SuppressLogging::new();
            assert_eq!(wal.append(&WalRecord::Commit { op: 1 }), 0);
        }
        assert_eq!(wal.appended_lsn(), 0);
        wal.append(&WalRecord::Commit { op: 2 });
        assert!(wal.appended_lsn() > 0);
    }

    #[test]
    fn unsynced_tail_dies_with_mem_device() {
        let dev = MemLogDevice::new();
        let wal = Wal::new(Box::new(dev), WalSyncMode::Group);
        let lsn1 = wal.append(&WalRecord::Commit { op: 1 });
        wal.sync_to(lsn1).unwrap();
        wal.append(&WalRecord::Commit { op: 2 });
        // Push op 2 to the device but never sync: write without fsync.
        // (flush path requires sync; emulate by checking durable image.)
        // The durable image must contain exactly the first record.
        // We cannot reach the inner device through Wal, so rebuild:
        let dev = MemLogDevice::new();
        dev.write(b"abc").unwrap();
        assert_eq!(dev.durable_bytes(), Vec::<u8>::new());
        dev.sync().unwrap();
        assert_eq!(dev.durable_bytes(), b"abc".to_vec());
        dev.write(b"xyz").unwrap();
        assert_eq!(dev.durable_bytes(), b"abc".to_vec());
    }

    #[test]
    fn group_commit_batches_concurrent_waiters() {
        use std::sync::atomic::AtomicUsize;
        // A device that counts syncs.
        struct Counting {
            inner: MemLogDevice,
            syncs: AtomicUsize,
        }
        impl LogDevice for Counting {
            fn write(&self, b: &[u8]) -> StorageResult<()> {
                self.inner.write(b)
            }
            fn sync(&self) -> StorageResult<()> {
                self.syncs.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(2));
                self.inner.sync()
            }
            fn read_all(&self) -> StorageResult<Vec<u8>> {
                self.inner.read_all()
            }
            fn truncate(&self, l: u64) -> StorageResult<()> {
                self.inner.truncate(l)
            }
            fn len(&self) -> u64 {
                self.inner.len()
            }
        }
        let dev = Box::new(Counting {
            inner: MemLogDevice::new(),
            syncs: AtomicUsize::new(0),
        });
        let syncs: *const AtomicUsize = &dev.syncs;
        let wal = Arc::new(Wal::new(dev, WalSyncMode::Group));
        let n = 8;
        std::thread::scope(|s| {
            for i in 0..n {
                let wal = Arc::clone(&wal);
                s.spawn(move || {
                    for j in 0..20 {
                        let lsn = wal.append(&WalRecord::Commit {
                            op: (i * 100 + j) as u64,
                        });
                        wal.sync_to(lsn).unwrap();
                    }
                });
            }
        });
        // With batching, far fewer syncs than the 160 commits.
        let count = unsafe { (*syncs).load(Ordering::SeqCst) };
        assert!(count < 160, "group commit should batch: {count} syncs");
        assert_eq!(wal.durable_lsn(), wal.appended_lsn());
    }

    #[test]
    fn truncate_reset_replaces_log() {
        let wal = Wal::new(Box::new(MemLogDevice::new()), WalSyncMode::Group);
        let lsn = wal.append(&WalRecord::Commit { op: 1 });
        wal.sync_to(lsn).unwrap();
        let ckpt = WalRecord::Checkpoint(Box::new(StoreSnapshot {
            redo_horizon: 0,
            next_unallocated: 1,
            free_list: vec![],
            segments: vec![],
            user_root: vec![0; 64],
            catalog: vec![],
        }));
        // Wrong expectation: no reset.
        assert!(!wal.try_truncate_reset(lsn + 1, &|| true, &ckpt).unwrap());
        // Precondition veto: no reset.
        assert!(!wal.try_truncate_reset(lsn, &|| false, &ckpt).unwrap());
        // Matching expectation: reset to a one-record log.
        assert!(wal.try_truncate_reset(lsn, &|| true, &ckpt).unwrap());
        assert_eq!(wal.durable_lsn(), wal.appended_lsn());
        assert!(wal.appended_lsn() > 0);
        assert!(wal.appended_lsn() != lsn);
    }

    #[test]
    fn dead_device_poisons_the_wal() {
        let fault = Arc::new(FaultControl::with_budget(0));
        let dev = MemLogDevice::new().with_fault(Arc::clone(&fault));
        let wal = Wal::new(Box::new(dev), WalSyncMode::Group);
        let lsn = wal.append(&WalRecord::Commit { op: 1 });
        assert!(wal.sync_to(lsn).is_err());
        // Subsequent syncs fail fast.
        assert!(wal.flush_buffered().is_err());
    }
}
