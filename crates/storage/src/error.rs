//! Error type for the physical record manager.

use std::fmt;

use crate::rid::{PageId, Rid};

/// Errors raised by the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying I/O failure (file backend).
    Io(std::io::Error),
    /// A page id referred past the end of the backing store.
    PageOutOfBounds(PageId),
    /// Page size outside the supported range or misaligned.
    BadPageSize(usize),
    /// A store file was opened with a different page size than it was
    /// formatted with.
    WrongPageSize {
        /// Page size recorded in the store's header.
        stored: usize,
        /// Page size the caller asked for.
        requested: usize,
    },
    /// The on-disk image is not a NATIX store or has an incompatible layout.
    Corrupt(String),
    /// A RID did not refer to a live record.
    RecordNotFound(Rid),
    /// The record is too large to ever fit on a page of this size.
    RecordTooLarge { len: usize, max: usize },
    /// The page has insufficient free space for the request.
    PageFull { needed: usize, free: usize },
    /// All buffer frames are pinned; no eviction victim exists.
    BufferExhausted,
    /// Attempt to use a segment id that was never created.
    NoSuchSegment(u16),
    /// A well-known slot was requested but is already occupied.
    SlotOccupied(u16),
    /// B+-tree keys must all have the key length the tree was created with.
    BadKeyLength { expected: usize, got: usize },
}

/// Convenience alias used throughout the storage crate.
pub type StorageResult<T> = Result<T, StorageError>;

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "I/O error: {e}"),
            StorageError::PageOutOfBounds(p) => write!(f, "page {p} out of bounds"),
            StorageError::BadPageSize(s) => write!(f, "unsupported page size {s}"),
            StorageError::WrongPageSize { stored, requested } => write!(
                f,
                "store was formatted with page size {stored}, opened with {requested}"
            ),
            StorageError::Corrupt(msg) => write!(f, "corrupt store: {msg}"),
            StorageError::RecordNotFound(rid) => write!(f, "record {rid} not found"),
            StorageError::RecordTooLarge { len, max } => {
                write!(f, "record of {len} bytes exceeds per-page maximum of {max}")
            }
            StorageError::PageFull { needed, free } => {
                write!(f, "page full: need {needed} bytes, {free} free")
            }
            StorageError::BufferExhausted => write!(f, "all buffer frames are pinned"),
            StorageError::NoSuchSegment(s) => write!(f, "segment {s} does not exist"),
            StorageError::SlotOccupied(s) => write!(f, "slot {s} is already occupied"),
            StorageError::BadKeyLength { expected, got } => {
                write!(f, "bad key length: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}
