//! Page-based B+-tree.
//!
//! NATIX's architecture diagram (§2.1) includes an index management module,
//! and §6 names "index structures that support our storage structure" as
//! ongoing work. This module provides the substrate: a disk-resident
//! B+-tree with fixed-length byte-string keys (compared lexicographically;
//! callers encode integers big-endian) and `u64` values. The NATIX label
//! index (`natix::index`) builds on it, and the paper's Query 1 gains an
//! indexed ablation in the harness.
//!
//! Implementation notes: insertion splits nodes recursively and grows a new
//! root; deletion is *lazy* (entries are removed from leaves, structural
//! shrinking only happens when a tree is rebuilt) — the common trade-off
//! for index workloads that are insert-mostly, and irrelevant for
//! correctness because lookups and scans skip empty nodes.
//!
//! Page layout (`PageKind::BTree`):
//!
//! ```text
//! leaf:  [hdr 16 | (key, value u64)*count]          flags bit0 = 1
//! inner: [hdr 16 | first_child u32 | (key, child u32)*count]
//! ```
//!
//! Inner-node invariant: keys in `subtree(first_child)` < `key[0]`;
//! `key[i]` ≤ keys in `subtree(child[i])` < `key[i+1]`.

use crate::error::{StorageError, StorageResult};
use crate::page::{PageBuf, PageKind, PAGE_HEADER_SIZE};
use crate::rid::{PageId, INVALID_PAGE};
use crate::segment::{SegmentId, StorageManager};

const LEAF_FLAG: u8 = 1;

// Meta page layout (PageKind::Plain).
const META_MAGIC: &[u8; 4] = b"NXBT";
const OFF_META_MAGIC: usize = 16;
const OFF_META_ROOT: usize = 20;
const OFF_META_KEYLEN: usize = 24;
const OFF_META_COUNT: usize = 28;

/// A disk-resident B+-tree with fixed-length keys and `u64` values.
pub struct BTree<'a> {
    sm: &'a StorageManager,
    segment: SegmentId,
    meta: PageId,
    key_len: usize,
}

impl<'a> BTree<'a> {
    /// Creates an empty tree; returns a handle whose
    /// [`meta_page`](Self::meta_page) the caller must remember.
    pub fn create(
        sm: &'a StorageManager,
        segment: SegmentId,
        key_len: usize,
    ) -> StorageResult<BTree<'a>> {
        assert!(key_len > 0 && key_len <= 64, "key length must be in 1..=64");
        let meta = sm.allocate_page(segment, PageKind::Plain)?;
        let root = sm.allocate_page(segment, PageKind::BTree)?;
        {
            let pin = sm.pin(root)?;
            let mut p = pin.write();
            p.format(PageKind::BTree);
            p.set_flags(LEAF_FLAG);
            p.set_next_page(INVALID_PAGE);
        }
        {
            let pin = sm.pin(meta)?;
            let mut p = pin.write();
            p.bytes_mut()[OFF_META_MAGIC..OFF_META_MAGIC + 4].copy_from_slice(META_MAGIC);
            p.write_u32(OFF_META_ROOT, root);
            p.write_u32(OFF_META_KEYLEN, key_len as u32);
            p.write_u64(OFF_META_COUNT, 0);
        }
        Ok(BTree {
            sm,
            segment,
            meta,
            key_len,
        })
    }

    /// Opens an existing tree by its meta page.
    pub fn open(
        sm: &'a StorageManager,
        segment: SegmentId,
        meta: PageId,
    ) -> StorageResult<BTree<'a>> {
        let key_len = {
            let pin = sm.pin(meta)?;
            let p = pin.read();
            if &p.bytes()[OFF_META_MAGIC..OFF_META_MAGIC + 4] != META_MAGIC {
                return Err(StorageError::Corrupt(format!(
                    "page {meta} is not a B+-tree meta"
                )));
            }
            p.read_u32(OFF_META_KEYLEN) as usize
        };
        Ok(BTree {
            sm,
            segment,
            meta,
            key_len,
        })
    }

    /// The meta page identifying this tree on disk.
    pub fn meta_page(&self) -> PageId {
        self.meta
    }

    /// The fixed key length in bytes.
    pub fn key_len(&self) -> usize {
        self.key_len
    }

    /// Number of live entries.
    pub fn len(&self) -> StorageResult<u64> {
        let pin = self.sm.pin(self.meta)?;
        let n = pin.read().read_u64(OFF_META_COUNT);
        Ok(n)
    }

    /// True when the tree holds no entries.
    pub fn is_empty(&self) -> StorageResult<bool> {
        Ok(self.len()? == 0)
    }

    fn root(&self) -> StorageResult<PageId> {
        let pin = self.sm.pin(self.meta)?;
        let root = pin.read().read_u32(OFF_META_ROOT);
        Ok(root)
    }

    fn set_root(&self, root: PageId) -> StorageResult<()> {
        let pin = self.sm.pin(self.meta)?;
        pin.write().write_u32(OFF_META_ROOT, root);
        Ok(())
    }

    fn bump_count(&self, delta: i64) -> StorageResult<()> {
        let pin = self.sm.pin(self.meta)?;
        let mut p = pin.write();
        let n = p.read_u64(OFF_META_COUNT) as i64 + delta;
        p.write_u64(OFF_META_COUNT, n.max(0) as u64);
        Ok(())
    }

    fn check_key(&self, key: &[u8]) -> StorageResult<()> {
        if key.len() != self.key_len {
            return Err(StorageError::BadKeyLength {
                expected: self.key_len,
                got: key.len(),
            });
        }
        Ok(())
    }

    fn leaf_entry(&self) -> usize {
        self.key_len + 8
    }

    fn inner_entry(&self) -> usize {
        self.key_len + 4
    }

    fn leaf_capacity(&self) -> usize {
        (self.sm.page_size() - PAGE_HEADER_SIZE) / self.leaf_entry()
    }

    fn inner_capacity(&self) -> usize {
        (self.sm.page_size() - PAGE_HEADER_SIZE - 4) / self.inner_entry()
    }

    fn is_leaf(p: &PageBuf) -> bool {
        p.flags() & LEAF_FLAG != 0
    }

    fn leaf_key<'p>(&self, p: &'p PageBuf, i: usize) -> &'p [u8] {
        let at = PAGE_HEADER_SIZE + i * self.leaf_entry();
        &p.bytes()[at..at + self.key_len]
    }

    fn leaf_value(&self, p: &PageBuf, i: usize) -> u64 {
        p.read_u64(PAGE_HEADER_SIZE + i * self.leaf_entry() + self.key_len)
    }

    fn inner_key<'p>(&self, p: &'p PageBuf, i: usize) -> &'p [u8] {
        let at = PAGE_HEADER_SIZE + 4 + i * self.inner_entry();
        &p.bytes()[at..at + self.key_len]
    }

    fn inner_child(&self, p: &PageBuf, i: isize) -> PageId {
        if i < 0 {
            p.read_u32(PAGE_HEADER_SIZE)
        } else {
            p.read_u32(PAGE_HEADER_SIZE + 4 + i as usize * self.inner_entry() + self.key_len)
        }
    }

    /// First index in a leaf whose key is ≥ `key`.
    fn leaf_lower_bound(&self, p: &PageBuf, key: &[u8]) -> usize {
        let n = p.slot_count() as usize;
        let (mut lo, mut hi) = (0, n);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.leaf_key(p, mid) < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Child position to descend into for `key`: index of the last
    /// separator ≤ `key`, or -1 for `first_child`.
    fn inner_descend_pos(&self, p: &PageBuf, key: &[u8]) -> isize {
        let n = p.slot_count() as usize;
        let (mut lo, mut hi) = (0, n);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.inner_key(p, mid) <= key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo as isize - 1
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> StorageResult<Option<u64>> {
        self.check_key(key)?;
        let mut page = self.root()?;
        loop {
            let pin = self.sm.pin(page)?;
            let p = pin.read();
            if Self::is_leaf(&p) {
                let i = self.leaf_lower_bound(&p, key);
                if i < p.slot_count() as usize && self.leaf_key(&p, i) == key {
                    return Ok(Some(self.leaf_value(&p, i)));
                }
                return Ok(None);
            }
            page = self.inner_child(&p, self.inner_descend_pos(&p, key));
        }
    }

    /// Inserts `key → value`, returning the previous value if the key was
    /// present (upsert semantics).
    pub fn insert(&self, key: &[u8], value: u64) -> StorageResult<Option<u64>> {
        self.check_key(key)?;
        let root = self.root()?;
        let result = self.insert_rec(root, key, value)?;
        if let Some((sep, new_page)) = result.split {
            let new_root = self.sm.allocate_page(self.segment, PageKind::BTree)?;
            let pin = self.sm.pin(new_root)?;
            let mut p = pin.write();
            p.format(PageKind::BTree);
            p.set_flags(0);
            p.write_u32(PAGE_HEADER_SIZE, root);
            let at = PAGE_HEADER_SIZE + 4;
            p.bytes_mut()[at..at + self.key_len].copy_from_slice(&sep);
            p.write_u32(at + self.key_len, new_page);
            p.set_slot_count(1);
            drop(p);
            drop(pin);
            self.set_root(new_root)?;
        }
        if result.replaced.is_none() {
            self.bump_count(1)?;
        }
        Ok(result.replaced)
    }

    fn insert_rec(&self, page: PageId, key: &[u8], value: u64) -> StorageResult<InsertOutcome> {
        let pin = self.sm.pin(page)?;
        let mut p = pin.write();
        if Self::is_leaf(&p) {
            let i = self.leaf_lower_bound(&p, key);
            let n = p.slot_count() as usize;
            if i < n && self.leaf_key(&p, i) == key {
                let old = self.leaf_value(&p, i);
                p.write_u64(
                    PAGE_HEADER_SIZE + i * self.leaf_entry() + self.key_len,
                    value,
                );
                return Ok(InsertOutcome {
                    replaced: Some(old),
                    split: None,
                });
            }
            let entry = self.leaf_entry();
            if n < self.leaf_capacity() {
                let start = PAGE_HEADER_SIZE + i * entry;
                let end = PAGE_HEADER_SIZE + n * entry;
                p.bytes_mut().copy_within(start..end, start + entry);
                p.bytes_mut()[start..start + self.key_len].copy_from_slice(key);
                p.write_u64(start + self.key_len, value);
                p.set_slot_count((n + 1) as u16);
                return Ok(InsertOutcome {
                    replaced: None,
                    split: None,
                });
            }
            // Leaf split: right half moves to a new leaf.
            let mid = n / 2;
            let new_leaf = self.sm.allocate_page(self.segment, PageKind::BTree)?;
            let new_pin = self.sm.pin(new_leaf)?;
            let mut np = new_pin.write();
            np.format(PageKind::BTree);
            np.set_flags(LEAF_FLAG);
            let move_bytes = (n - mid) * entry;
            let src = PAGE_HEADER_SIZE + mid * entry;
            let (dst_from_src, count_right) = (PAGE_HEADER_SIZE, n - mid);
            np.bytes_mut()[dst_from_src..dst_from_src + move_bytes]
                .copy_from_slice(&p.bytes()[src..src + move_bytes]);
            np.set_slot_count(count_right as u16);
            np.set_next_page(p.next_page());
            p.set_slot_count(mid as u16);
            p.set_next_page(new_leaf);
            let sep = self.leaf_key(&np, 0).to_vec();
            drop(np);
            // Insert into whichever half owns the key.
            drop(p);
            drop(pin);
            let target = if key < sep.as_slice() { page } else { new_leaf };
            let sub = self.insert_rec(target, key, value)?;
            debug_assert!(sub.split.is_none(), "half-full leaf cannot split again");
            return Ok(InsertOutcome {
                replaced: sub.replaced,
                split: Some((sep, new_leaf)),
            });
        }
        // Inner node.
        let pos = self.inner_descend_pos(&p, key);
        let child = self.inner_child(&p, pos);
        drop(p);
        drop(pin);
        let sub = self.insert_rec(child, key, value)?;
        let Some((sep, new_child)) = sub.split else {
            return Ok(sub);
        };
        let pin = self.sm.pin(page)?;
        let mut p = pin.write();
        let n = p.slot_count() as usize;
        let entry = self.inner_entry();
        let insert_at = (pos + 1) as usize; // entries after the descended child
        if n < self.inner_capacity() {
            let start = PAGE_HEADER_SIZE + 4 + insert_at * entry;
            let end = PAGE_HEADER_SIZE + 4 + n * entry;
            p.bytes_mut().copy_within(start..end, start + entry);
            p.bytes_mut()[start..start + self.key_len].copy_from_slice(&sep);
            p.write_u32(start + self.key_len, new_child);
            p.set_slot_count((n + 1) as u16);
            return Ok(InsertOutcome {
                replaced: sub.replaced,
                split: None,
            });
        }
        // Inner split. Work on an owned, already-inserted entry list.
        let mut entries: Vec<(Vec<u8>, PageId)> = (0..n)
            .map(|i| {
                (
                    self.inner_key(&p, i).to_vec(),
                    self.inner_child(&p, i as isize),
                )
            })
            .collect();
        entries.insert(insert_at, (sep, new_child));
        let mid = entries.len() / 2;
        let (up_key, right_first) = (entries[mid].0.clone(), entries[mid].1);
        let right_entries = entries.split_off(mid + 1);
        entries.pop(); // the middle entry moves up
        let first_child = p.read_u32(PAGE_HEADER_SIZE);
        self.write_inner(&mut p, first_child, &entries);
        drop(p);
        drop(pin);
        let new_inner = self.sm.allocate_page(self.segment, PageKind::BTree)?;
        let new_pin = self.sm.pin(new_inner)?;
        let mut np = new_pin.write();
        np.format(PageKind::BTree);
        np.set_flags(0);
        self.write_inner(&mut np, right_first, &right_entries);
        drop(np);
        Ok(InsertOutcome {
            replaced: sub.replaced,
            split: Some((up_key, new_inner)),
        })
    }

    fn write_inner(&self, p: &mut PageBuf, first_child: PageId, entries: &[(Vec<u8>, PageId)]) {
        p.write_u32(PAGE_HEADER_SIZE, first_child);
        let entry = self.inner_entry();
        for (i, (k, c)) in entries.iter().enumerate() {
            let at = PAGE_HEADER_SIZE + 4 + i * entry;
            p.bytes_mut()[at..at + self.key_len].copy_from_slice(k);
            p.write_u32(at + self.key_len, *c);
        }
        p.set_slot_count(entries.len() as u16);
    }

    /// Removes `key`, returning its value if present. Deletion is lazy: the
    /// tree never shrinks structurally.
    pub fn delete(&self, key: &[u8]) -> StorageResult<Option<u64>> {
        self.check_key(key)?;
        let mut page = self.root()?;
        loop {
            let pin = self.sm.pin(page)?;
            let mut p = pin.write();
            if Self::is_leaf(&p) {
                let i = self.leaf_lower_bound(&p, key);
                let n = p.slot_count() as usize;
                if i >= n || self.leaf_key(&p, i) != key {
                    return Ok(None);
                }
                let old = self.leaf_value(&p, i);
                let entry = self.leaf_entry();
                let start = PAGE_HEADER_SIZE + i * entry;
                let end = PAGE_HEADER_SIZE + n * entry;
                p.bytes_mut().copy_within(start + entry..end, start);
                p.set_slot_count((n - 1) as u16);
                drop(p);
                drop(pin);
                self.bump_count(-1)?;
                return Ok(Some(old));
            }
            let next = self.inner_child(&p, self.inner_descend_pos(&p, key));
            drop(p);
            page = next;
        }
    }

    /// Calls `f(key, value)` for every entry with `lo ≤ key ≤ hi`
    /// (inclusive bounds), in key order. Returning `false` stops the scan.
    pub fn scan_range(
        &self,
        lo: &[u8],
        hi: &[u8],
        mut f: impl FnMut(&[u8], u64) -> bool,
    ) -> StorageResult<()> {
        self.check_key(lo)?;
        self.check_key(hi)?;
        // Descend to the leaf containing lo.
        let mut page = self.root()?;
        loop {
            let pin = self.sm.pin(page)?;
            let p = pin.read();
            if Self::is_leaf(&p) {
                break;
            }
            page = self.inner_child(&p, self.inner_descend_pos(&p, lo));
        }
        // Walk the leaf chain.
        loop {
            let pin = self.sm.pin(page)?;
            let p = pin.read();
            let n = p.slot_count() as usize;
            let start = self.leaf_lower_bound(&p, lo);
            for i in start..n {
                let k = self.leaf_key(&p, i);
                if k > hi {
                    return Ok(());
                }
                if !f(k, self.leaf_value(&p, i)) {
                    return Ok(());
                }
            }
            let next = p.next_page();
            if next == INVALID_PAGE {
                return Ok(());
            }
            page = next;
        }
    }

    /// Collects all `(key, value)` pairs in a range (test/debug helper).
    pub fn range_collect(&self, lo: &[u8], hi: &[u8]) -> StorageResult<Vec<(Vec<u8>, u64)>> {
        let mut out = Vec::new();
        self.scan_range(lo, hi, |k, v| {
            out.push((k.to_vec(), v));
            true
        })?;
        Ok(out)
    }

    /// Collects every entry in key order.
    pub fn collect_all(&self) -> StorageResult<Vec<(Vec<u8>, u64)>> {
        let lo = vec![0u8; self.key_len];
        let hi = vec![0xFFu8; self.key_len];
        self.range_collect(&lo, &hi)
    }
}

struct InsertOutcome {
    replaced: Option<u64>,
    /// `(separator key, new right sibling)` when the visited node split.
    split: Option<(Vec<u8>, PageId)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::{BufferManager, EvictionPolicy};
    use crate::disk::MemStorage;
    use crate::stats::IoStats;
    use std::sync::Arc;

    fn mk(page_size: usize) -> StorageManager {
        let backend = Arc::new(MemStorage::new(page_size).unwrap());
        let bm = Arc::new(BufferManager::new(
            backend,
            64,
            EvictionPolicy::Lru,
            IoStats::new_shared(),
        ));
        StorageManager::create(bm).unwrap()
    }

    fn key8(v: u64) -> [u8; 8] {
        v.to_be_bytes()
    }

    #[test]
    fn insert_get_small() {
        let sm = mk(512);
        let seg = sm.create_segment("idx").unwrap();
        let bt = BTree::create(&sm, seg, 8).unwrap();
        assert_eq!(bt.insert(&key8(5), 50).unwrap(), None);
        assert_eq!(bt.insert(&key8(1), 10).unwrap(), None);
        assert_eq!(bt.insert(&key8(9), 90).unwrap(), None);
        assert_eq!(bt.get(&key8(5)).unwrap(), Some(50));
        assert_eq!(bt.get(&key8(1)).unwrap(), Some(10));
        assert_eq!(bt.get(&key8(2)).unwrap(), None);
        assert_eq!(bt.len().unwrap(), 3);
    }

    #[test]
    fn upsert_replaces() {
        let sm = mk(512);
        let seg = sm.create_segment("idx").unwrap();
        let bt = BTree::create(&sm, seg, 8).unwrap();
        assert_eq!(bt.insert(&key8(7), 1).unwrap(), None);
        assert_eq!(bt.insert(&key8(7), 2).unwrap(), Some(1));
        assert_eq!(bt.get(&key8(7)).unwrap(), Some(2));
        assert_eq!(bt.len().unwrap(), 1);
    }

    #[test]
    fn many_inserts_force_splits_ascending() {
        let sm = mk(512); // tiny pages: splits at every level
        let seg = sm.create_segment("idx").unwrap();
        let bt = BTree::create(&sm, seg, 8).unwrap();
        for v in 0..2000u64 {
            bt.insert(&key8(v), v * 10).unwrap();
        }
        for v in 0..2000u64 {
            assert_eq!(bt.get(&key8(v)).unwrap(), Some(v * 10), "key {v}");
        }
        assert_eq!(bt.len().unwrap(), 2000);
    }

    #[test]
    fn many_inserts_shuffled() {
        let sm = mk(512);
        let seg = sm.create_segment("idx").unwrap();
        let bt = BTree::create(&sm, seg, 8).unwrap();
        // Deterministic shuffle via multiplicative hashing.
        let keys: Vec<u64> = (0..2000u64)
            .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15))
            .collect();
        for (i, k) in keys.iter().enumerate() {
            bt.insert(&key8(*k), i as u64).unwrap();
        }
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(bt.get(&key8(*k)).unwrap(), Some(i as u64));
        }
        // Scan returns sorted order.
        let all = bt.collect_all().unwrap();
        assert_eq!(all.len(), 2000);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn range_scan_bounds_inclusive() {
        let sm = mk(512);
        let seg = sm.create_segment("idx").unwrap();
        let bt = BTree::create(&sm, seg, 8).unwrap();
        for v in (0..100u64).map(|v| v * 2) {
            bt.insert(&key8(v), v).unwrap();
        }
        let hits = bt.range_collect(&key8(10), &key8(20)).unwrap();
        let got: Vec<u64> = hits.iter().map(|(_, v)| *v).collect();
        assert_eq!(got, vec![10, 12, 14, 16, 18, 20]);
    }

    #[test]
    fn delete_then_get() {
        let sm = mk(512);
        let seg = sm.create_segment("idx").unwrap();
        let bt = BTree::create(&sm, seg, 8).unwrap();
        for v in 0..500u64 {
            bt.insert(&key8(v), v).unwrap();
        }
        for v in (0..500u64).step_by(2) {
            assert_eq!(bt.delete(&key8(v)).unwrap(), Some(v));
        }
        assert_eq!(bt.delete(&key8(2)).unwrap(), None, "double delete");
        for v in 0..500u64 {
            let expect = (v % 2 == 1).then_some(v);
            assert_eq!(bt.get(&key8(v)).unwrap(), expect);
        }
        assert_eq!(bt.len().unwrap(), 250);
        let all = bt.collect_all().unwrap();
        assert_eq!(all.len(), 250);
    }

    #[test]
    fn reopen_by_meta_page() {
        let sm = mk(1024);
        let seg = sm.create_segment("idx").unwrap();
        let meta = {
            let bt = BTree::create(&sm, seg, 4).unwrap();
            bt.insert(b"abcd", 1).unwrap();
            bt.insert(b"wxyz", 2).unwrap();
            bt.meta_page()
        };
        let bt = BTree::open(&sm, seg, meta).unwrap();
        assert_eq!(bt.key_len(), 4);
        assert_eq!(bt.get(b"abcd").unwrap(), Some(1));
        assert_eq!(bt.get(b"wxyz").unwrap(), Some(2));
    }

    #[test]
    fn wrong_key_length_rejected() {
        let sm = mk(512);
        let seg = sm.create_segment("idx").unwrap();
        let bt = BTree::create(&sm, seg, 8).unwrap();
        assert!(matches!(
            bt.insert(b"short", 0),
            Err(StorageError::BadKeyLength {
                expected: 8,
                got: 5
            })
        ));
        assert!(bt.get(b"longer-than-8!!!").is_err());
    }

    #[test]
    fn interleaved_insert_delete_matches_shadow() {
        let sm = mk(512);
        let seg = sm.create_segment("idx").unwrap();
        let bt = BTree::create(&sm, seg, 8).unwrap();
        let mut shadow = std::collections::BTreeMap::new();
        let mut x: u64 = 0x12345678;
        for step in 0..3000u64 {
            // xorshift
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let k = x % 400;
            if step % 3 == 2 {
                assert_eq!(bt.delete(&key8(k)).unwrap(), shadow.remove(&k));
            } else {
                assert_eq!(bt.insert(&key8(k), step).unwrap(), shadow.insert(k, step));
            }
        }
        let all = bt.collect_all().unwrap();
        assert_eq!(all.len(), shadow.len());
        for ((k, v), (sk, sv)) in all.iter().zip(shadow.iter()) {
            assert_eq!(k, &key8(*sk));
            assert_eq!(v, sv);
        }
    }
}
