//! Record identifiers.
//!
//! The paper (§2.1): "records are identified by a pair (pageid, slot)
//! (called record ID or RID)". Appendix A serialises RIDs in 8 bytes
//! ("Standalone objects contain their parent record as RID (8 bytes)"), so
//! the wire format here is `page: u32 | slot: u16 | reserved: u16`.

use std::fmt;

/// Global page number within a repository file. Pages are equal-sized, so
/// the byte offset of page `p` is `p * page_size`.
pub type PageId = u32;

/// Slot number within a slotted page.
pub type SlotId = u16;

/// Sentinel for "no page" (e.g. the parent RID of a root record).
pub const INVALID_PAGE: PageId = u32::MAX;

/// A record identifier: `(pageid, slot)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rid {
    pub page: PageId,
    pub slot: SlotId,
}

/// Number of bytes a RID occupies on disk (Appendix A).
pub const RID_BYTES: usize = 8;

impl Rid {
    /// Creates a RID from its components.
    #[inline]
    pub const fn new(page: PageId, slot: SlotId) -> Self {
        Rid { page, slot }
    }

    /// The sentinel RID used as "no parent" in standalone object headers.
    #[inline]
    pub const fn invalid() -> Self {
        Rid {
            page: INVALID_PAGE,
            slot: u16::MAX,
        }
    }

    /// True for the sentinel returned by [`Rid::invalid`].
    #[inline]
    pub fn is_invalid(&self) -> bool {
        self.page == INVALID_PAGE
    }

    /// Serialises into the 8-byte on-disk form.
    #[inline]
    pub fn encode(&self, out: &mut [u8]) {
        out[0..4].copy_from_slice(&self.page.to_le_bytes());
        out[4..6].copy_from_slice(&self.slot.to_le_bytes());
        out[6..8].copy_from_slice(&[0, 0]);
    }

    /// Appends the 8-byte on-disk form to a buffer.
    #[inline]
    pub fn encode_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.page.to_le_bytes());
        out.extend_from_slice(&self.slot.to_le_bytes());
        out.extend_from_slice(&[0, 0]);
    }

    /// Reads a RID from its 8-byte on-disk form.
    #[inline]
    pub fn decode(buf: &[u8]) -> Self {
        let page = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
        let slot = u16::from_le_bytes([buf[4], buf[5]]);
        Rid { page, slot }
    }
}

impl fmt::Display for Rid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_invalid() {
            write!(f, "(nil)")
        } else {
            write!(f, "({},{})", self.page, self.slot)
        }
    }
}

impl fmt::Debug for Rid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let rid = Rid::new(123_456, 42);
        let mut buf = [0u8; RID_BYTES];
        rid.encode(&mut buf);
        assert_eq!(Rid::decode(&buf), rid);
    }

    #[test]
    fn invalid_sentinel() {
        let rid = Rid::invalid();
        assert!(rid.is_invalid());
        let mut buf = [0u8; RID_BYTES];
        rid.encode(&mut buf);
        assert!(Rid::decode(&buf).is_invalid());
        assert!(!Rid::new(0, 0).is_invalid());
    }

    #[test]
    fn display() {
        assert_eq!(Rid::new(7, 3).to_string(), "(7,3)");
        assert_eq!(Rid::invalid().to_string(), "(nil)");
    }

    #[test]
    fn ordering_is_page_major() {
        assert!(Rid::new(1, 9) < Rid::new(2, 0));
        assert!(Rid::new(2, 0) < Rid::new(2, 1));
    }
}
