//! Raw page buffers and the common page header.
//!
//! Every page starts with a fixed 16-byte header; the interpretation of the
//! rest depends on [`PageKind`]. Slotted pages (see [`crate::slotted`]) hold
//! records; "plain pages" (§2.1: "for indices and user-defined structures")
//! are used by the B+-tree and the segment metadata chains.
//!
//! Layout (little-endian):
//!
//! ```text
//! 0   u8   kind
//! 1   u8   flags
//! 2   u16  slot_count          (slotted pages)
//! 4   u16  free_start          (offset of the first unused data byte)
//! 6   u16  free_total          (free bytes including holes)
//! 8   u32  next_page           (chained plain pages / B+-tree siblings)
//! 12  u32  lsn                 (truncated page LSN, stamped by WAL replay)
//! 16  ...  payload
//! ```

use crate::error::{StorageError, StorageResult};
use crate::rid::{PageId, INVALID_PAGE};

/// Size of the fixed header at the start of every page.
pub const PAGE_HEADER_SIZE: usize = 16;

/// Discriminates what the payload of a page contains.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum PageKind {
    /// Unallocated / zeroed.
    Free = 0,
    /// Slotted page holding records (the tree storage manager's pages).
    Slotted = 1,
    /// Plain page: free-form payload for indices and catalog structures.
    Plain = 2,
    /// Segment metadata (space map chain).
    SpaceMap = 3,
    /// B+-tree node.
    BTree = 4,
    /// Repository file header (page 0 only).
    Header = 5,
}

impl PageKind {
    /// Decodes a kind byte, rejecting unknown values.
    pub fn from_u8(v: u8) -> StorageResult<PageKind> {
        Ok(match v {
            0 => PageKind::Free,
            1 => PageKind::Slotted,
            2 => PageKind::Plain,
            3 => PageKind::SpaceMap,
            4 => PageKind::BTree,
            5 => PageKind::Header,
            _ => return Err(StorageError::Corrupt(format!("unknown page kind {v}"))),
        })
    }
}

/// A heap-allocated page image plus typed accessors for the common header.
///
/// `PageBuf` wraps the raw bytes held in a buffer frame. It is deliberately
/// a thin layer: all multi-byte fields are read/written explicitly so page
/// images are portable and position-independent.
pub struct PageBuf {
    data: Box<[u8]>,
}

impl PageBuf {
    /// Allocates a zeroed page of `page_size` bytes (kind = `Free`).
    pub fn new(page_size: usize) -> Self {
        PageBuf {
            data: vec![0u8; page_size].into_boxed_slice(),
        }
    }

    /// Wraps an existing page image.
    pub fn from_bytes(data: Box<[u8]>) -> Self {
        PageBuf { data }
    }

    /// The page size in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer is empty (never the case for real pages).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw byte access.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Raw mutable byte access.
    #[inline]
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Consumes the buffer, returning the raw bytes.
    pub fn into_bytes(self) -> Box<[u8]> {
        self.data
    }

    /// Resets the page to an all-zero `Free` page.
    pub fn clear(&mut self) {
        self.data.fill(0);
    }

    /// The page kind stored in the header.
    #[inline]
    pub fn kind(&self) -> StorageResult<PageKind> {
        PageKind::from_u8(self.data[0])
    }

    /// Sets the page kind.
    #[inline]
    pub fn set_kind(&mut self, kind: PageKind) {
        self.data[0] = kind as u8;
    }

    /// Free-form flag byte.
    #[inline]
    pub fn flags(&self) -> u8 {
        self.data[1]
    }

    /// Sets the flag byte.
    #[inline]
    pub fn set_flags(&mut self, flags: u8) {
        self.data[1] = flags;
    }

    /// Number of slots on a slotted page.
    #[inline]
    pub fn slot_count(&self) -> u16 {
        u16::from_le_bytes([self.data[2], self.data[3]])
    }

    /// Sets the slot count.
    #[inline]
    pub fn set_slot_count(&mut self, n: u16) {
        self.data[2..4].copy_from_slice(&n.to_le_bytes());
    }

    /// Offset of the first unused byte of the data area.
    #[inline]
    pub fn free_start(&self) -> u16 {
        u16::from_le_bytes([self.data[4], self.data[5]])
    }

    /// Sets the free-start offset.
    #[inline]
    pub fn set_free_start(&mut self, v: u16) {
        self.data[4..6].copy_from_slice(&v.to_le_bytes());
    }

    /// Total free bytes on the page, counting holes left by deletions.
    #[inline]
    pub fn free_total(&self) -> u16 {
        u16::from_le_bytes([self.data[6], self.data[7]])
    }

    /// Sets the total free byte count.
    #[inline]
    pub fn set_free_total(&mut self, v: u16) {
        self.data[6..8].copy_from_slice(&v.to_le_bytes());
    }

    /// Successor page for chained structures ([`INVALID_PAGE`] = none).
    #[inline]
    pub fn next_page(&self) -> PageId {
        u32::from_le_bytes([self.data[8], self.data[9], self.data[10], self.data[11]])
    }

    /// Sets the successor page.
    #[inline]
    pub fn set_next_page(&mut self, p: PageId) {
        self.data[8..12].copy_from_slice(&p.to_le_bytes());
    }

    /// Page LSN (truncated to 32 bits): the log position of the last redo
    /// image written for this page, stamped by WAL replay and by the
    /// commit hook's image capture. Informational — recovery replay is
    /// idempotent and does not depend on it (stolen frames reach disk
    /// without a stamp).
    #[inline]
    pub fn lsn32(&self) -> u32 {
        self.read_u32(12)
    }

    /// Sets the page LSN field (header bytes 12..16, formerly reserved).
    #[inline]
    pub fn set_lsn32(&mut self, lsn: u32) {
        self.write_u32(12, lsn);
    }

    /// Initialises the header for a fresh page of the given kind.
    pub fn format(&mut self, kind: PageKind) {
        self.clear();
        self.set_kind(kind);
        self.set_next_page(INVALID_PAGE);
    }

    /// Reads a `u16` at `off`.
    #[inline]
    pub fn read_u16(&self, off: usize) -> u16 {
        u16::from_le_bytes([self.data[off], self.data[off + 1]])
    }

    /// Writes a `u16` at `off`.
    #[inline]
    pub fn write_u16(&mut self, off: usize, v: u16) {
        self.data[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads a `u32` at `off`.
    #[inline]
    pub fn read_u32(&self, off: usize) -> u32 {
        u32::from_le_bytes([
            self.data[off],
            self.data[off + 1],
            self.data[off + 2],
            self.data[off + 3],
        ])
    }

    /// Writes a `u32` at `off`.
    #[inline]
    pub fn write_u32(&mut self, off: usize, v: u32) {
        self.data[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads a `u64` at `off`.
    #[inline]
    pub fn read_u64(&self, off: usize) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.data[off..off + 8]);
        u64::from_le_bytes(b)
    }

    /// Writes a `u64` at `off`.
    #[inline]
    pub fn write_u64(&mut self, off: usize, v: u64) {
        self.data[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_fields_roundtrip() {
        let mut p = PageBuf::new(2048);
        p.format(PageKind::Slotted);
        p.set_slot_count(7);
        p.set_free_start(100);
        p.set_free_total(1900);
        p.set_next_page(55);
        p.set_flags(0xA5);
        assert_eq!(p.kind().unwrap(), PageKind::Slotted);
        assert_eq!(p.slot_count(), 7);
        assert_eq!(p.free_start(), 100);
        assert_eq!(p.free_total(), 1900);
        assert_eq!(p.next_page(), 55);
        assert_eq!(p.flags(), 0xA5);
    }

    #[test]
    fn format_resets_payload() {
        let mut p = PageBuf::new(512);
        p.bytes_mut()[100] = 0xFF;
        p.format(PageKind::Plain);
        assert_eq!(p.bytes()[100], 0);
        assert_eq!(p.next_page(), INVALID_PAGE);
    }

    #[test]
    fn unknown_kind_rejected() {
        let mut p = PageBuf::new(512);
        p.bytes_mut()[0] = 99;
        assert!(p.kind().is_err());
    }

    #[test]
    fn scalar_accessors() {
        let mut p = PageBuf::new(512);
        p.write_u16(20, 0xBEEF);
        p.write_u32(22, 0xDEAD_BEEF);
        p.write_u64(26, 0x0123_4567_89AB_CDEF);
        assert_eq!(p.read_u16(20), 0xBEEF);
        assert_eq!(p.read_u32(22), 0xDEAD_BEEF);
        assert_eq!(p.read_u64(26), 0x0123_4567_89AB_CDEF);
    }
}
