//! In-memory free-space inventory (FSI) for one segment.
//!
//! The tree storage manager asks "which page of this segment can take a
//! record of n bytes, preferably near this hint?" — e.g. the paper's 1:1
//! configuration where "the record manager was told to store parent with
//! children and sibling nodes on the same page if possible" (§4.2). The FSI
//! answers from memory; the authoritative free counts live in the slotted
//! pages themselves, so FSI values are hints that are re-checked on use.

use std::collections::{BTreeMap, BTreeSet};

use crate::rid::PageId;

/// Free-space inventory: tracks `(page, free bytes)` with best-fit lookup.
#[derive(Debug, Default)]
pub struct FreeSpaceInventory {
    by_page: BTreeMap<PageId, u16>,
    // Ordered by (free, page): range scans find the best (tightest) fit.
    by_free: BTreeSet<(u16, PageId)>,
}

impl FreeSpaceInventory {
    /// Creates an empty inventory.
    pub fn new() -> FreeSpaceInventory {
        FreeSpaceInventory::default()
    }

    /// Number of tracked pages.
    pub fn len(&self) -> usize {
        self.by_page.len()
    }

    /// True when no pages are tracked.
    pub fn is_empty(&self) -> bool {
        self.by_page.is_empty()
    }

    /// Records (or updates) the free byte count of `page`.
    pub fn set(&mut self, page: PageId, free: u16) {
        if let Some(old) = self.by_page.insert(page, free) {
            self.by_free.remove(&(old, page));
        }
        self.by_free.insert((free, page));
    }

    /// Forgets `page` (when it is returned to the free page pool).
    pub fn remove(&mut self, page: PageId) -> bool {
        if let Some(old) = self.by_page.remove(&page) {
            self.by_free.remove(&(old, page));
            true
        } else {
            false
        }
    }

    /// The tracked free bytes of `page`, if known.
    pub fn get(&self, page: PageId) -> Option<u16> {
        self.by_page.get(&page).copied()
    }

    /// Finds a page with at least `needed` free bytes. The `hint` page is
    /// preferred if it qualifies ("same page if possible"); otherwise the
    /// tightest fit is returned to limit fragmentation.
    pub fn find(&self, needed: usize, hint: Option<PageId>) -> Option<PageId> {
        if needed > u16::MAX as usize {
            return None;
        }
        if let Some(h) = hint {
            if let Some(&free) = self.by_page.get(&h) {
                if free as usize >= needed {
                    return Some(h);
                }
            }
        }
        self.by_free
            .range((needed as u16, 0)..)
            .next()
            .map(|&(_, p)| p)
    }

    /// Like [`find`](Self::find) but excludes one page (used when moving a
    /// record off a full page: the source page must not be chosen).
    pub fn find_excluding(
        &self,
        needed: usize,
        hint: Option<PageId>,
        exclude: PageId,
    ) -> Option<PageId> {
        if needed > u16::MAX as usize {
            return None;
        }
        if let Some(h) = hint {
            if h != exclude {
                if let Some(&free) = self.by_page.get(&h) {
                    if free as usize >= needed {
                        return Some(h);
                    }
                }
            }
        }
        self.by_free
            .range((needed as u16, 0)..)
            .map(|&(_, p)| p)
            .find(|&p| p != exclude)
    }

    /// Finds a page with at least `needed` free bytes whose page id is
    /// within `window` of `hint` — the locality-preserving placement used
    /// by the tree store (page ids correlate with allocation order, so
    /// nearby ids mean nearby disk positions and shared buffer residency).
    pub fn find_near(&self, needed: usize, hint: PageId, window: u32) -> Option<PageId> {
        if needed > u16::MAX as usize {
            return None;
        }
        let lo = hint.saturating_sub(window);
        let hi = hint.saturating_add(window);
        let mut best: Option<(u32, PageId)> = None;
        for (&p, &free) in self.by_page.range(lo..=hi) {
            if free as usize >= needed {
                let dist = p.abs_diff(hint);
                if best.is_none_or(|(bd, _)| dist < bd) {
                    best = Some((dist, p));
                }
            }
        }
        best.map(|(_, p)| p)
    }

    /// Iterates over all `(page, free)` pairs (spacemap serialisation).
    pub fn iter(&self) -> impl Iterator<Item = (PageId, u16)> + '_ {
        self.by_page.iter().map(|(&p, &f)| (p, f))
    }

    /// All tracked pages, ascending (deterministic space accounting).
    pub fn pages_sorted(&self) -> Vec<PageId> {
        let mut v: Vec<PageId> = self.by_page.keys().copied().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_find_best_fit() {
        let mut fsi = FreeSpaceInventory::new();
        fsi.set(1, 100);
        fsi.set(2, 500);
        fsi.set(3, 300);
        // Tightest fit: 300 ≥ 200 beats 500.
        assert_eq!(fsi.find(200, None), Some(3));
        assert_eq!(fsi.find(400, None), Some(2));
        assert_eq!(fsi.find(600, None), None);
    }

    #[test]
    fn hint_wins_when_it_fits() {
        let mut fsi = FreeSpaceInventory::new();
        fsi.set(1, 100);
        fsi.set(2, 500);
        assert_eq!(fsi.find(50, Some(1)), Some(1));
        assert_eq!(fsi.find(200, Some(1)), Some(2), "hint too small, fall back");
        assert_eq!(fsi.find(50, Some(99)), Some(1), "unknown hint ignored");
    }

    #[test]
    fn update_replaces_old_entry() {
        let mut fsi = FreeSpaceInventory::new();
        fsi.set(1, 400);
        fsi.set(1, 10);
        assert_eq!(fsi.find(100, None), None);
        assert_eq!(fsi.get(1), Some(10));
        assert_eq!(fsi.len(), 1);
    }

    #[test]
    fn remove_forgets() {
        let mut fsi = FreeSpaceInventory::new();
        fsi.set(1, 400);
        assert!(fsi.remove(1));
        assert!(!fsi.remove(1));
        assert!(fsi.is_empty());
        assert_eq!(fsi.find(1, None), None);
    }

    #[test]
    fn exclusion() {
        let mut fsi = FreeSpaceInventory::new();
        fsi.set(1, 300);
        fsi.set(2, 300);
        let found = fsi.find_excluding(200, Some(1), 1).unwrap();
        assert_eq!(found, 2);
        assert_eq!(fsi.find_excluding(200, None, 2), Some(1));
        fsi.remove(2);
        assert_eq!(fsi.find_excluding(200, None, 1), None);
    }

    #[test]
    fn zero_need_matches_anything_tracked() {
        let mut fsi = FreeSpaceInventory::new();
        fsi.set(9, 0);
        assert_eq!(fsi.find(0, None), Some(9));
    }
}
