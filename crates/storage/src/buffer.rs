//! Buffer manager.
//!
//! §2.1: the record manager "is responsible for disk memory management and
//! buffering". The pool holds a fixed number of frames (the paper uses a
//! 2 MB buffer, i.e. `2 MB / page_size` frames); pages are pinned for
//! access and unpinned on guard drop; eviction is LRU by default with a
//! clock alternative for ablation experiments.
//!
//! Concurrency model: the frame table and replacement state live under one
//! pool mutex, but the mutex is **not** held across disk I/O. A miss
//! reserves its victim frame under the lock (a nonzero pin count keeps
//! other threads from re-victimising it), marks both the evicted page and
//! the loading page in-flight, and performs the write-back and the read
//! outside the lock; the page→frame mapping is published only once the
//! load succeeded, so a mapping always points at a fully loaded frame.
//! Pins on in-flight pages block on a condvar until the I/O settles —
//! a re-read can never observe the stale disk image of a page whose dirty
//! frame is still being written back, nor a half-read frame. Page
//! *contents* are protected by per-frame `RwLock`s, so pinned readers and
//! writers of distinct pages proceed in parallel, and so do misses on
//! distinct pages. When every evictable frame is reserved for in-flight
//! I/O, a miss *waits* for a completion instead of failing: frames held
//! mid-load are released within one disk service time, and erroring there
//! would surface spurious [`StorageError::BufferExhausted`] under exactly
//! the concurrent-ingestion load the pool exists to serve.
//!
//! Freed pages and readers: [`BufferManager::discard`] *retires* a page
//! that is still pinned — the mapping goes away at once, but the
//! superseded frame image stays alive and readable until the last pin
//! drops. Writers freeing storage therefore never block on, or fail
//! because of, concurrent snapshot readers holding short pins.
//!
//! Replacement hints and prefetch: a pin carries an [`AccessHint`].
//! Under [`EvictionPolicy::ScanResistant`], scan-hinted pages live in a
//! bounded *cold set* (at most `frame_count / 8` frames) and never earn
//! more than one reference bit, so a full-document scan recycles its own
//! frames instead of flushing the point-access working set; a normal pin
//! on a cold page promotes it out. [`BufferManager::prefetch`] issues a
//! batched read-ahead ([`DiskBackend::read_pages`]) into free or cleanly
//! evictable frames without returning pins; prefetched pages are marked
//! in-flight exactly like demand loads, so a demand pin racing a prefetch
//! of the same page blocks on the shared condvar instead of issuing a
//! second read. Prefetch never steals a dirty frame (read-ahead must not
//! add foreground write I/O) and is a new held-across-I/O region
//! (`buffer.prefetch`) under lockdep: like every other buffer I/O it runs
//! outside the pool mutex, against reserved unmapped frames.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::Ordering;
use std::sync::Arc;

use parking_lot::{
    Condvar, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard, TrackedAtomicBool, TrackedAtomicU32,
};

use crate::disk::DiskBackend;
use crate::error::{StorageError, StorageResult};
use crate::page::PageBuf;
use crate::rid::PageId;
use crate::stats::IoStats;

/// Page replacement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Least-recently-used (default; what the paper's era systems used).
    Lru,
    /// Second-chance clock.
    Clock,
    /// Scan-hinted second-chance clock. Pages faulted in through
    /// [`AccessHint::Scan`] enter a bounded cold set (`frame_count / 8`
    /// frames, at least 2) with no reference bit; once the set is full, a
    /// scan miss must recycle a cold frame and cannot touch the rest of
    /// the pool. A scan hit grants at most the one clock reference bit; a
    /// normal hit adopts the page into the working set.
    ScanResistant,
}

/// How a pin intends to use its page — the replacement hint consumed by
/// [`EvictionPolicy::ScanResistant`] (the other policies ignore it, which
/// is what makes the hint safe to thread through unconditionally).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AccessHint {
    /// Point access: the page belongs to the working set.
    #[default]
    Normal,
    /// One pass of a sequential stream (record-queue scans, bulkload
    /// appends): cache at cold priority, never promote past one
    /// reference bit.
    Scan,
}

struct Frame {
    /// Page contents. Deliberately *unranked* under lockdep: `pin_inner`
    /// takes the pool mutex while holding a reserved frame's write guard
    /// (safe — the frame is unmapped, so no pool-lock holder touches it),
    /// while `write_back` takes a frame guard under the pool mutex.
    /// Class-level order checking would flag that as an inversion even
    /// though the reserved-frame invariant makes it cycle-free.
    data: RwLock<PageBuf>,
    pin_count: TrackedAtomicU32,
    dirty: TrackedAtomicBool,
}

struct PoolState {
    /// page -> frame index
    table: HashMap<PageId, usize>,
    /// frame index -> resident page
    resident: Vec<Option<PageId>>,
    last_use: Vec<u64>,
    ref_bit: Vec<bool>,
    /// Frame belongs to the scan cold set ([`EvictionPolicy::ScanResistant`]
    /// only; always false under the other policies).
    cold: Vec<bool>,
    /// Number of `true` entries in `cold`.
    cold_count: usize,
    clock_hand: usize,
    tick: u64,
    /// Evicted pages whose dirty image is still being written back (the
    /// write happens outside the pool mutex). A pin on such a page waits
    /// until the disk image is current before re-reading it.
    io_in_flight: HashSet<PageId>,
}

/// The buffer pool. Cheap to share via `Arc`.
pub struct BufferManager {
    backend: Arc<dyn DiskBackend>,
    frames: Vec<Arc<Frame>>,
    state: Mutex<PoolState>,
    /// Signalled whenever an entry leaves `io_in_flight`.
    io_done: Condvar,
    policy: EvictionPolicy,
    /// Largest number of frames scan-hinted pages may occupy at once
    /// (`frame_count / 8`, at least 2) under `ScanResistant`.
    cold_cap: usize,
    stats: Arc<IoStats>,
    /// When attached, the WAL rule is enforced: the log is made durable
    /// before any dirty frame is written back (steal or flush).
    wal: std::sync::OnceLock<Arc<crate::wal::Wal>>,
}

impl BufferManager {
    /// Creates a pool of `frame_count` frames over `backend`.
    pub fn new(
        backend: Arc<dyn DiskBackend>,
        frame_count: usize,
        policy: EvictionPolicy,
        stats: Arc<IoStats>,
    ) -> BufferManager {
        assert!(frame_count > 0, "buffer pool needs at least one frame");
        let page_size = backend.page_size();
        let frames = (0..frame_count)
            .map(|_| {
                Arc::new(Frame {
                    // Per-frame page latch: one of N interchangeable leaf
                    // locks, below every ranked lock, never nested with
                    // another frame's — a single shared rank slot would
                    // false-positive on unrelated frames.
                    // natix-lint: allow(unranked-lock): per-frame leaf latch, deliberately rankless
                    data: RwLock::new(PageBuf::new(page_size)),
                    pin_count: TrackedAtomicU32::new(0),
                    dirty: TrackedAtomicBool::new(false),
                })
            })
            .collect();
        BufferManager {
            backend,
            frames,
            state: Mutex::with_rank(
                &parking_lot::rank::BUFFER_POOL,
                PoolState {
                    table: HashMap::with_capacity(frame_count * 2),
                    resident: vec![None; frame_count],
                    last_use: vec![0; frame_count],
                    ref_bit: vec![false; frame_count],
                    cold: vec![false; frame_count],
                    cold_count: 0,
                    clock_hand: 0,
                    tick: 0,
                    io_in_flight: HashSet::new(),
                },
            ),
            io_done: Condvar::new(),
            policy,
            cold_cap: (frame_count / 8).max(2).min(frame_count),
            stats,
            wal: std::sync::OnceLock::new(),
        }
    }

    /// Attaches the write-ahead log. From this point every dirty-frame
    /// write-back (eviction steal, flush, clear) first makes the log
    /// durable up to its current end — the WAL rule: undo information for
    /// a page must reach stable storage before the page overwrites its
    /// base image. Cheap when the log has no unsynced tail.
    pub fn set_wal(&self, wal: Arc<crate::wal::Wal>) {
        let _ = self.wal.set(wal);
    }

    fn wal_barrier(&self) -> StorageResult<()> {
        // natix-model fail point: reverting the WAL rule (log forced
        // before a dirty page overwrites its base image) must be caught
        // by the model suite's LSN-checking disk.
        if parking_lot::fail_point("wal.force-before-write-back") {
            return Ok(());
        }
        match self.wal.get() {
            Some(wal) => wal.flush_buffered(),
            None => Ok(()),
        }
    }

    /// Convenience: pool sized to `buffer_bytes` (the paper's experiments
    /// use 2 MB regardless of page size).
    pub fn with_buffer_bytes(
        backend: Arc<dyn DiskBackend>,
        buffer_bytes: usize,
        policy: EvictionPolicy,
        stats: Arc<IoStats>,
    ) -> BufferManager {
        let frames = (buffer_bytes / backend.page_size()).max(8);
        BufferManager::new(backend, frames, policy, stats)
    }

    /// The page size of the underlying backend.
    pub fn page_size(&self) -> usize {
        self.backend.page_size()
    }

    /// Number of frames in the pool.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Internal-consistency check of the frame table: every published
    /// mapping points at a frame whose resident page maps back, and no
    /// page is resident in two frames at once. O(frames); used by the
    /// model-check suite as the detector for coalescing bugs (a demand
    /// pin and a prefetch loading the same page into two frames).
    pub fn validate_frame_table(&self) -> Result<(), String> {
        let st = self.state.lock();
        let mut seen: HashMap<PageId, usize> = HashMap::new();
        for (frame, resident) in st.resident.iter().enumerate() {
            if let Some(page) = *resident {
                if let Some(prev) = seen.insert(page, frame) {
                    return Err(format!(
                        "buffer invariant violated: page {page:?} resident in frames {prev} and {frame}"
                    ));
                }
                if st.table.get(&page) != Some(&frame) {
                    return Err(format!(
                        "buffer invariant violated: frame {frame} holds page {page:?} but the table maps it to {:?}",
                        st.table.get(&page)
                    ));
                }
            }
        }
        for (&page, &frame) in &st.table {
            if st.resident.get(frame).copied().flatten() != Some(page) {
                return Err(format!(
                    "buffer invariant violated: table maps page {page:?} to frame {frame} which holds {:?}",
                    st.resident.get(frame)
                ));
            }
        }
        Ok(())
    }

    /// The shared statistics block.
    pub fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    /// The underlying backend.
    pub fn backend(&self) -> &Arc<dyn DiskBackend> {
        &self.backend
    }

    /// Flips a frame's cold-set membership, keeping the count in sync.
    fn set_cold(&self, st: &mut PoolState, frame: usize, cold: bool) {
        if st.cold[frame] != cold {
            st.cold[frame] = cold;
            if cold {
                st.cold_count += 1;
            } else {
                st.cold_count -= 1;
            }
        }
    }

    fn touch(&self, st: &mut PoolState, frame: usize, hint: AccessHint) {
        st.tick += 1;
        let tick = st.tick;
        st.last_use[frame] = tick;
        // A scan reference grants at most this one bit; a normal reference
        // additionally promotes a cold page into the working set.
        st.ref_bit[frame] = true;
        if hint == AccessHint::Normal {
            self.set_cold(st, frame, false);
        }
    }

    /// Publishes replacement state for a freshly loaded frame. Under
    /// `ScanResistant`, a scan-hinted load enters the cold set *without* a
    /// reference bit — the load itself is not a reference, so an
    /// unclaimed prefetched page is the first thing recycled.
    fn install(&self, st: &mut PoolState, frame: usize, hint: AccessHint) {
        if self.policy == EvictionPolicy::ScanResistant && hint == AccessHint::Scan {
            st.tick += 1;
            st.last_use[frame] = st.tick;
            st.ref_bit[frame] = false;
            self.set_cold(st, frame, true);
        } else {
            self.touch(st, frame, hint);
        }
    }

    fn find_victim(&self, st: &mut PoolState, hint: AccessHint) -> StorageResult<usize> {
        // Prefer an unused frame. The pin-count check matters: a frame
        // mid-install (reserved, I/O in flight) has no resident page but
        // must not be handed out again.
        if let Some(free) =
            st.resident.iter().enumerate().position(|(i, r)| {
                r.is_none() && self.frames[i].pin_count.load(Ordering::Acquire) == 0
            })
        {
            return Ok(free);
        }
        match self.policy {
            EvictionPolicy::Lru => {
                let mut best: Option<(u64, usize)> = None;
                for (i, frame) in self.frames.iter().enumerate() {
                    if frame.pin_count.load(Ordering::Acquire) == 0 {
                        let t = st.last_use[i];
                        if best.is_none_or(|(bt, _)| t < bt) {
                            best = Some((t, i));
                        }
                    }
                }
                best.map(|(_, i)| i).ok_or(StorageError::BufferExhausted)
            }
            EvictionPolicy::Clock => {
                let n = self.frames.len();
                for _ in 0..2 * n {
                    let i = st.clock_hand;
                    st.clock_hand = (st.clock_hand + 1) % n;
                    if self.frames[i].pin_count.load(Ordering::Acquire) != 0 {
                        continue;
                    }
                    if st.ref_bit[i] {
                        st.ref_bit[i] = false;
                    } else {
                        return Ok(i);
                    }
                }
                Err(StorageError::BufferExhausted)
            }
            EvictionPolicy::ScanResistant => {
                let n = self.frames.len();
                if hint == AccessHint::Scan {
                    // A scan miss recycles *within the cold set* whenever
                    // it can: a cold-only second-chance sweep that leaves
                    // hot frames' reference bits untouched (a global sweep
                    // here would let a long scan strip the working set's
                    // bits one miss at a time). Only when every cold frame
                    // is pinned — concurrent scans, prefetch claims — may
                    // the scan grow the set, and only up to the cap.
                    for _ in 0..2 * n {
                        let i = st.clock_hand;
                        st.clock_hand = (st.clock_hand + 1) % n;
                        if !st.cold[i] || self.frames[i].pin_count.load(Ordering::Acquire) != 0 {
                            continue;
                        }
                        if st.ref_bit[i] {
                            st.ref_bit[i] = false;
                        } else {
                            return Ok(i);
                        }
                    }
                    if st.cold_count >= self.cold_cap {
                        // The allowance is exhausted and all of it is in
                        // use: wait (patience loop) rather than touch the
                        // working set — the bounded-eviction guarantee.
                        return Err(StorageError::BufferExhausted);
                    }
                }
                // Normal misses, and scan misses still growing their
                // allowance: global second-chance sweep. Cold frames carry
                // at most one reference bit, so the sweep reclaims them
                // ahead of the working set.
                for _ in 0..2 * n {
                    let i = st.clock_hand;
                    st.clock_hand = (st.clock_hand + 1) % n;
                    if self.frames[i].pin_count.load(Ordering::Acquire) != 0 {
                        continue;
                    }
                    if st.ref_bit[i] {
                        st.ref_bit[i] = false;
                    } else {
                        return Ok(i);
                    }
                }
                Err(StorageError::BufferExhausted)
            }
        }
    }

    fn write_back(&self, frame: usize, page: PageId) -> StorageResult<()> {
        let f = &self.frames[frame];
        if f.dirty.swap(false, Ordering::AcqRel) {
            #[cfg(feature = "lockdep")]
            let _io = parking_lot::lockdep::io_region("buffer.write-back");
            if let Err(e) = self.wal_barrier() {
                f.dirty.store(true, Ordering::Release);
                return Err(e);
            }
            let data = f.data.read();
            if let Err(e) = self.backend.write_page(page, data.bytes()) {
                f.dirty.store(true, Ordering::Release);
                return Err(e);
            }
            self.stats.add_write();
        }
        Ok(())
    }

    fn pin_inner(
        &self,
        page: PageId,
        load_from_disk: bool,
        hint: AccessHint,
    ) -> StorageResult<PinnedPage> {
        let scan = hint == AccessHint::Scan;
        let mut st = self.state.lock();
        // Bounded patience for the all-frames-pinned case below: pins are
        // short-lived (a guard over one record operation), so a brief
        // retry window separates transient contention from a true leak of
        // pins. 64 × 1 ms keeps genuine exhaustion errors prompt.
        let mut patience = 64u32;
        let frame = loop {
            if let Some(&frame) = st.table.get(&page) {
                self.stats.add_hit(scan);
                self.frames[frame].pin_count.fetch_add(1, Ordering::AcqRel);
                self.touch(&mut st, frame, hint);
                return Ok(PinnedPage {
                    frame: Arc::clone(&self.frames[frame]),
                    page,
                });
            }
            if st.io_in_flight.contains(&page) {
                // Either the page was just evicted and its dirty image is
                // still on its way to disk (re-reading now would see the
                // stale image), or another thread is loading it right now.
                // Block until that I/O settles, then re-check.
                st = self.io_done.wait(st);
                // natix-model fail point: the `continue` below re-runs the
                // whole predicate (resident? still in flight?) because a
                // wake-up only means *some* I/O settled — it may have been
                // spurious or for another page. Reverting the re-check
                // treats any wake as "our page is ready" and claims a
                // second frame for a page already being loaded; the model
                // suite catches the resulting duplicate-frame state.
                if !parking_lot::fail_point("buffer.inflight-recheck") {
                    continue;
                }
            }
            match self.find_victim(&mut st, hint) {
                Ok(f) => break f,
                // No evictable frame right now. With many threads missing
                // concurrently this is usually *transient*: frames reserved
                // for in-flight loads/write-backs are pinned until their
                // I/O settles, and failing here would surface a spurious
                // `BufferExhausted` to a caller that merely raced the I/O.
                // Wait for in-flight I/O to release its reservation (the
                // condvar fires on every completion); when nothing is in
                // flight the frames are held by live guards — poll briefly
                // in case they are just about to drop, then give up.
                Err(e) => {
                    if !st.io_in_flight.is_empty() {
                        st = self.io_done.wait(st);
                    } else if patience > 0 {
                        patience -= 1;
                        let (g, _) = self
                            .io_done
                            .wait_timeout(st, std::time::Duration::from_millis(1));
                        st = g;
                    } else {
                        return Err(e);
                    }
                }
            }
        };
        self.stats.add_miss(scan);
        // Reserve the frame under the lock: the nonzero pin count keeps it
        // from being re-victimised while the I/O below runs without the
        // lock. The page→frame mapping is NOT published yet — a mapping
        // must only ever point at a fully loaded frame, so concurrent
        // pinners of `page` wait on the in-flight marker instead and never
        // observe a half-read image (even if this load fails).
        self.frames[frame].pin_count.fetch_add(1, Ordering::AcqRel);
        let old = st.resident[frame];
        // Only a *dirty* evicted page needs in-flight protection (its disk
        // image is stale until the write-back lands); a clean one can be
        // re-read immediately. The frame is unpinned, so nobody can be
        // mutating the dirty flag concurrently.
        let dirty_old = old.is_some() && self.frames[frame].dirty.load(Ordering::Acquire);
        if let Some(old_page) = old {
            self.stats.add_eviction(scan);
            st.table.remove(&old_page);
            if dirty_old {
                st.io_in_flight.insert(old_page);
            }
        }
        // Pre-charge cold-set membership while the load is in flight: a
        // scan-claimed frame counts against the cap *immediately*, so
        // concurrent scan misses cannot slip past it and evict working-set
        // frames beyond the bound. `install` re-asserts the same state on
        // publish; the error paths below undo it.
        let enter_cold = scan && self.policy == EvictionPolicy::ScanResistant;
        self.set_cold(&mut st, frame, enter_cold);
        if !dirty_old {
            // A frame retired by `discard` while its page was dirty keeps
            // the stale flag; clear it so the new tenant starts clean.
            self.frames[frame].dirty.store(false, Ordering::Release);
        }
        st.resident[frame] = None;
        st.io_in_flight.insert(page);
        drop(st);

        // All disk I/O happens here, outside the pool mutex. The frame is
        // unreachable by other threads (reserved, unmapped), so the
        // content lock is uncontended.
        let mut data = self.frames[frame].data.write();

        // Write back the evicted page first. If that fails, the dirty
        // image must NOT be dropped: restore the flag and re-map the old
        // page so its latest contents stay resident and a later flush can
        // retry — losing them would silently corrupt the store.
        // `dirty_old` is only ever set together with an evicted page; the
        // `if let` keeps that coupling without a panicking assertion.
        if let (true, Some(old_page)) = (dirty_old, old) {
            #[cfg(feature = "lockdep")]
            let _io = parking_lot::lockdep::io_region("buffer.steal-write-back");
            self.frames[frame].dirty.store(false, Ordering::Release);
            // WAL rule: the log must be flushed to its current append point
            // before a dirty frame is stolen to disk, so redo images for the
            // page's latest committed contents are never lost behind an
            // unlogged steal.
            if let Err(e) = self
                .wal_barrier()
                .and_then(|()| self.backend.write_page(old_page, data.bytes()))
            {
                self.frames[frame].dirty.store(true, Ordering::Release);
                drop(data);
                let mut st = self.state.lock();
                st.io_in_flight.remove(&old_page);
                st.io_in_flight.remove(&page);
                st.resident[frame] = Some(old_page);
                st.table.insert(old_page, frame);
                self.set_cold(&mut st, frame, false);
                drop(st);
                self.io_done.notify_all();
                self.frames[frame].pin_count.fetch_sub(1, Ordering::AcqRel);
                return Err(e);
            }
            self.stats.add_write();
            // The old page's disk image is current again: release its
            // waiters before the (unrelated) read of the new page. Taking
            // the pool mutex while holding the content guard is safe here:
            // pool-lock holders only touch content locks of frames listed
            // in `resident`, and this frame is unmapped.
            let mut st = self.state.lock();
            st.io_in_flight.remove(&old_page);
            drop(st);
            self.io_done.notify_all();
        }
        let result = if load_from_disk {
            #[cfg(feature = "lockdep")]
            let _io = parking_lot::lockdep::io_region("buffer.read-page");
            // The elapsed read time feeds the miss-latency EWMA the query
            // planner calibrates its per-page cost constant from.
            let t0 = std::time::Instant::now();
            self.backend.read_page(page, data.bytes_mut()).map(|()| {
                self.stats
                    .record_miss_latency(t0.elapsed().as_nanos() as u64);
                self.stats.add_read()
            })
        } else {
            data.clear();
            self.frames[frame].dirty.store(true, Ordering::Release);
            Ok(())
        };
        drop(data);

        let mut st = self.state.lock();
        st.io_in_flight.remove(&page);
        let out = match result {
            Ok(()) => {
                st.resident[frame] = Some(page);
                st.table.insert(page, frame);
                self.install(&mut st, frame, hint);
                Ok(PinnedPage {
                    frame: Arc::clone(&self.frames[frame]),
                    page,
                })
            }
            Err(e) => {
                // The frame stays unmapped; release its pre-charged
                // cold-set slot along with it.
                self.set_cold(&mut st, frame, false);
                Err(e)
            }
        };
        drop(st);
        self.io_done.notify_all();
        if out.is_err() {
            // Read failure: the evicted page is safely on disk by now, so
            // the frame simply stays unmapped (contents are garbage) and
            // returns to the pool as a free frame once unpinned.
            self.frames[frame].pin_count.fetch_sub(1, Ordering::AcqRel);
        }
        out
    }

    /// Pins `page` for access, reading it from disk on a miss.
    pub fn pin(&self, page: PageId) -> StorageResult<PinnedPage> {
        self.pin_inner(page, true, AccessHint::Normal)
    }

    /// [`pin`](Self::pin) under an explicit replacement hint.
    pub fn pin_hinted(&self, page: PageId, hint: AccessHint) -> StorageResult<PinnedPage> {
        self.pin_inner(page, true, hint)
    }

    /// Pins a freshly allocated page *without* reading it from disk: the
    /// frame is zeroed and marked dirty. The caller must have allocated the
    /// page id (see [`crate::segment::StorageManager`]).
    pub fn pin_new(&self, page: PageId) -> StorageResult<PinnedPage> {
        self.pin_inner(page, false, AccessHint::Normal)
    }

    /// [`pin_new`](Self::pin_new) under an explicit replacement hint
    /// (bulkload append streams pass [`AccessHint::Scan`]: freshly
    /// written pages of a one-pass load are not a working set).
    pub fn pin_new_hinted(&self, page: PageId, hint: AccessHint) -> StorageResult<PinnedPage> {
        self.pin_inner(page, false, hint)
    }

    /// Best-effort batched read-ahead of `pages`, without returning pins.
    ///
    /// Pages already resident or already in flight are skipped. Each
    /// remaining page claims a victim frame under scan priority; the
    /// claim stops early (prefetch is advisory, never an error) when the
    /// pool has no victim or only a *dirty* one — read-ahead must never
    /// add a foreground write-back. Claimed pages are marked in-flight,
    /// so a demand pin racing the prefetch coalesces on the shared
    /// condvar instead of re-reading; the batch itself goes through
    /// [`DiskBackend::read_pages`] outside the pool mutex. Returns the
    /// number of pages read. On a read error nothing is published: the
    /// claimed frames return to the pool free, and the error is reported
    /// (callers treat it as advisory — the demand read will surface it).
    pub fn prefetch(&self, pages: &[PageId]) -> StorageResult<usize> {
        let mut claims: Vec<(PageId, usize)> = Vec::new();
        {
            let mut st = self.state.lock();
            for &page in pages {
                // natix-model fail point: dropping the in-flight check
                // breaks the coalescing contract with demand pins — the
                // prefetch claims a second frame for a page another thread
                // is loading right now, which the model suite catches as a
                // duplicate-frame state.
                let in_flight_elsewhere = st.io_in_flight.contains(&page)
                    && !parking_lot::fail_point("buffer.prefetch-coalesce");
                if st.table.contains_key(&page)
                    || in_flight_elsewhere
                    || claims.iter().any(|&(p, _)| p == page)
                {
                    continue;
                }
                let Ok(frame) = self.find_victim(&mut st, AccessHint::Scan) else {
                    break;
                };
                if st.resident[frame].is_some() && self.frames[frame].dirty.load(Ordering::Acquire)
                {
                    break;
                }
                // Reserve exactly like a demand miss: pin count up,
                // mapping unpublished, page marked in-flight, cold-set
                // membership pre-charged against the scan cap.
                self.frames[frame].pin_count.fetch_add(1, Ordering::AcqRel);
                if let Some(old) = st.resident[frame].take() {
                    self.stats.add_eviction(true);
                    st.table.remove(&old);
                }
                self.set_cold(&mut st, frame, self.policy == EvictionPolicy::ScanResistant);
                self.frames[frame].dirty.store(false, Ordering::Release);
                st.io_in_flight.insert(page);
                claims.push((page, frame));
            }
        }
        if claims.is_empty() {
            return Ok(0);
        }

        // The batched read, outside the pool mutex. The claimed frames are
        // reserved and unmapped, so their content locks are uncontended
        // (same invariant as a demand miss).
        let mut guards: Vec<RwLockWriteGuard<'_, PageBuf>> = claims
            .iter()
            .map(|&(_, frame)| self.frames[frame].data.write())
            .collect();
        let result = {
            #[cfg(feature = "lockdep")]
            let _io = parking_lot::lockdep::io_region("buffer.prefetch");
            let mut reqs: Vec<(PageId, &mut [u8])> = claims
                .iter()
                .zip(guards.iter_mut())
                .map(|(&(page, _), guard)| (page, guard.bytes_mut()))
                .collect();
            self.backend.read_pages(&mut reqs)
        };
        drop(guards);

        let mut st = self.state.lock();
        for &(page, frame) in &claims {
            st.io_in_flight.remove(&page);
            if result.is_ok() {
                st.resident[frame] = Some(page);
                st.table.insert(page, frame);
                self.install(&mut st, frame, AccessHint::Scan);
            } else {
                self.set_cold(&mut st, frame, false);
            }
            self.frames[frame].pin_count.fetch_sub(1, Ordering::AcqRel);
        }
        drop(st);
        self.io_done.notify_all();
        result.map(|()| {
            self.stats.add_reads(claims.len() as u64);
            claims.len()
        })
    }

    /// Writes back every dirty frame (pages stay resident).
    pub fn flush_all(&self) -> StorageResult<()> {
        let st = self.state.lock();
        for (frame, resident) in st.resident.iter().enumerate() {
            if let Some(page) = resident {
                self.write_back(frame, *page)?;
            }
        }
        Ok(())
    }

    /// Flushes everything and empties the pool. Fails with
    /// [`StorageError::BufferExhausted`] if any page is still pinned. The
    /// benchmark harness calls this before each measured operation ("The
    /// buffer was cleared at the start of each operation", §4.2).
    pub fn clear(&self) -> StorageResult<()> {
        let mut st = self.state.lock();
        if self
            .frames
            .iter()
            .any(|f| f.pin_count.load(Ordering::Acquire) != 0)
        {
            return Err(StorageError::BufferExhausted);
        }
        for (frame, resident) in st.resident.iter().enumerate() {
            if let Some(page) = resident {
                self.write_back(frame, *page)?;
            }
        }
        st.table.clear();
        st.resident.iter_mut().for_each(|r| *r = None);
        st.last_use.iter_mut().for_each(|t| *t = 0);
        st.ref_bit.iter_mut().for_each(|b| *b = false);
        st.cold.iter_mut().for_each(|c| *c = false);
        st.cold_count = 0;
        Ok(())
    }

    /// Drops `page` from the pool without writing it back (used when a
    /// page is freed). No-op if the page is not resident.
    ///
    /// A *pinned* page is **retired** instead of rejected: the page→frame
    /// mapping is removed immediately (a subsequent pin of the same page
    /// id gets a fresh frame with the page's post-free contents), but the
    /// frame itself — the superseded image — stays alive and readable for
    /// every pin guard already holding it, and returns to the pool only
    /// when the last such pin drops. This is what lets a writer free
    /// pages while snapshot readers still hold short pins on them: the
    /// reader finishes its record parse against the superseded image, the
    /// writer never blocks on (or errors because of) reader pins.
    pub fn discard(&self, page: PageId) -> StorageResult<()> {
        let mut st = self.state.lock();
        if let Some(&frame) = st.table.get(&page) {
            self.frames[frame].dirty.store(false, Ordering::Release);
            st.table.remove(&page);
            st.resident[frame] = None;
            self.set_cold(&mut st, frame, false);
            // If pinned, the nonzero pin count keeps `find_victim` away
            // until the last holder unpins; nothing else to do.
        }
        Ok(())
    }
}

/// RAII pin on a buffered page. Contents are accessed through [`read`] /
/// [`write`] guards; dropping the pin makes the frame evictable again.
///
/// [`read`]: PinnedPage::read
/// [`write`]: PinnedPage::write
#[must_use = "dropping a PinnedPage immediately makes the frame evictable"]
pub struct PinnedPage {
    frame: Arc<Frame>,
    page: PageId,
}

impl PinnedPage {
    /// The pinned page's id.
    pub fn page_id(&self) -> PageId {
        self.page
    }

    /// Shared access to the page image.
    pub fn read(&self) -> RwLockReadGuard<'_, PageBuf> {
        self.frame.data.read()
    }

    /// Exclusive access to the page image; marks the frame dirty.
    pub fn write(&self) -> RwLockWriteGuard<'_, PageBuf> {
        self.frame.dirty.store(true, Ordering::Release);
        self.frame.data.write()
    }

    /// Marks the page dirty without taking the write lock (for callers that
    /// mutated through `write` earlier in a multi-step operation).
    pub fn mark_dirty(&self) {
        self.frame.dirty.store(true, Ordering::Release);
    }
}

impl Drop for PinnedPage {
    fn drop(&mut self) {
        self.frame.pin_count.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemStorage;

    fn pool(frames: usize, policy: EvictionPolicy) -> (Arc<BufferManager>, Arc<IoStats>) {
        let stats = IoStats::new_shared();
        let backend = Arc::new(MemStorage::new(512).unwrap());
        backend.grow(256).unwrap();
        let bm = Arc::new(BufferManager::new(
            backend,
            frames,
            policy,
            Arc::clone(&stats),
        ));
        (bm, stats)
    }

    #[test]
    fn hit_and_miss_counting() {
        let (bm, stats) = pool(4, EvictionPolicy::Lru);
        {
            let p = bm.pin(3).unwrap();
            assert_eq!(p.page_id(), 3);
        }
        let _p = bm.pin(3).unwrap();
        let s = stats.snapshot();
        assert_eq!(s.buffer_misses, 1);
        assert_eq!(s.buffer_hits, 1);
        assert_eq!(s.physical_reads, 1);
    }

    #[test]
    fn dirty_pages_written_back_on_eviction() {
        let (bm, stats) = pool(2, EvictionPolicy::Lru);
        {
            let p = bm.pin(0).unwrap();
            p.write().bytes_mut()[100] = 42;
        }
        // Evict page 0 by touching two other pages.
        let _a = bm.pin(1).unwrap();
        let _b = bm.pin(2).unwrap();
        assert_eq!(stats.snapshot().physical_writes, 1);
        // Re-reading page 0 sees the mutation.
        drop((_a, _b));
        let p = bm.pin(0).unwrap();
        assert_eq!(p.read().bytes()[100], 42);
    }

    #[test]
    fn pinned_pages_are_not_evicted() {
        let (bm, _) = pool(2, EvictionPolicy::Lru);
        let _a = bm.pin(0).unwrap();
        let _b = bm.pin(1).unwrap();
        assert!(matches!(bm.pin(2), Err(StorageError::BufferExhausted)));
        drop(_b);
        assert!(bm.pin(2).is_ok());
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let (bm, _) = pool(2, EvictionPolicy::Lru);
        drop(bm.pin(0).unwrap());
        drop(bm.pin(1).unwrap());
        drop(bm.pin(0).unwrap()); // 0 is now MRU
        drop(bm.pin(2).unwrap()); // must evict 1
        let st = bm.state.lock();
        assert!(st.table.contains_key(&0));
        assert!(st.table.contains_key(&2));
        assert!(!st.table.contains_key(&1));
    }

    #[test]
    fn clock_policy_works() {
        let (bm, _) = pool(3, EvictionPolicy::Clock);
        for p in 0..10u32 {
            let g = bm.pin(p).unwrap();
            g.write().bytes_mut()[0] = p as u8;
        }
        bm.flush_all().unwrap();
        for p in 0..10u32 {
            let g = bm.pin(p).unwrap();
            assert_eq!(g.read().bytes()[0], p as u8);
        }
    }

    #[test]
    fn clear_flushes_and_empties() {
        let (bm, stats) = pool(4, EvictionPolicy::Lru);
        {
            let p = bm.pin(5).unwrap();
            p.write().bytes_mut()[0] = 9;
        }
        bm.clear().unwrap();
        assert_eq!(stats.snapshot().physical_writes, 1);
        let before = stats.snapshot();
        let p = bm.pin(5).unwrap();
        assert_eq!(p.read().bytes()[0], 9);
        assert_eq!(
            stats.snapshot().since(&before).buffer_misses,
            1,
            "pool was emptied"
        );
    }

    #[test]
    fn clear_fails_with_pins() {
        let (bm, _) = pool(4, EvictionPolicy::Lru);
        let _p = bm.pin(1).unwrap();
        assert!(bm.clear().is_err());
    }

    #[test]
    fn discard_drops_without_writeback() {
        let (bm, stats) = pool(4, EvictionPolicy::Lru);
        {
            let p = bm.pin(7).unwrap();
            p.write().bytes_mut()[0] = 1;
        }
        bm.discard(7).unwrap();
        assert_eq!(stats.snapshot().physical_writes, 0);
    }

    #[test]
    fn discard_retires_pinned_page_until_last_unpin() {
        let (bm, _) = pool(4, EvictionPolicy::Lru);
        // Seed page 7 on disk with a marker, then dirty it in the pool.
        {
            let p = bm.pin(7).unwrap();
            p.write().bytes_mut()[0] = 1;
        }
        bm.flush_all().unwrap();
        let held = bm.pin(7).unwrap();
        held.write().bytes_mut()[0] = 2; // superseded image, never flushed
        bm.discard(7).unwrap();
        // The holder keeps reading the retired image...
        assert_eq!(held.read().bytes()[0], 2);
        // ...while a fresh pin of the same page id gets the disk image in
        // a different frame.
        let fresh = bm.pin(7).unwrap();
        assert_eq!(fresh.read().bytes()[0], 1);
        assert_eq!(held.read().bytes()[0], 2);
        drop(held);
        drop(fresh);
        // The retired frame returned to the pool clean: filling the pool
        // must not write its stale image anywhere.
        let before = bm.stats().snapshot().physical_writes;
        for p in 20..28u32 {
            drop(bm.pin(p).unwrap());
        }
        assert_eq!(bm.stats().snapshot().physical_writes, before);
    }

    #[test]
    fn pin_new_skips_read() {
        let (bm, stats) = pool(4, EvictionPolicy::Lru);
        let p = bm.pin_new(9).unwrap();
        assert!(p.read().bytes().iter().all(|&b| b == 0));
        assert_eq!(stats.snapshot().physical_reads, 0);
        drop(p);
        bm.flush_all().unwrap();
        assert_eq!(stats.snapshot().physical_writes, 1);
    }

    #[test]
    fn concurrent_miss_eviction_storm_preserves_contents() {
        // Hammer a tiny pool from several threads so misses, evictions and
        // write-backs overlap; every page must always read back the bytes
        // last written to it (the write-back happens outside the pool
        // mutex, so this exercises the in-flight tracking).
        let stats = IoStats::new_shared();
        let backend = Arc::new(MemStorage::new(512).unwrap());
        backend.grow(32).unwrap();
        let bm = Arc::new(BufferManager::new(backend, 4, EvictionPolicy::Lru, stats));
        // Seed every page with its own marker.
        for p in 0..32u32 {
            let g = bm.pin(p).unwrap();
            g.write().bytes_mut()[0] = p as u8;
        }
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let bm = Arc::clone(&bm);
            handles.push(std::thread::spawn(move || {
                let mut x = t + 1;
                for _ in 0..2_000 {
                    // Cheap xorshift for page selection.
                    x ^= x << 13;
                    x ^= x >> 17;
                    x ^= x << 5;
                    let page = x % 32;
                    let g = match bm.pin(page) {
                        Ok(g) => g,
                        Err(StorageError::BufferExhausted) => continue,
                        Err(e) => panic!("{e}"),
                    };
                    let seen = g.read().bytes()[0];
                    assert_eq!(seen, page as u8, "page {page} corrupted");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn stress_small_pool_pin_miss_dirty_evict() {
        // Many threads over a tiny pool: every operation mixes hits,
        // misses, dirty writes and evictions, so loads and write-backs of
        // different threads constantly overlap on the in-flight/condvar
        // path. Each page carries a pair of bytes that is only ever
        // written together under one content write guard — observing a
        // torn pair means a reader saw a half-loaded or stale frame.
        let stats = IoStats::new_shared();
        let backend = Arc::new(MemStorage::new(512).unwrap());
        backend.grow(24).unwrap();
        let bm = Arc::new(BufferManager::new(backend, 3, EvictionPolicy::Lru, stats));
        for p in 0..24u32 {
            let g = bm.pin(p).unwrap();
            let mut w = g.write();
            w.bytes_mut()[0] = p as u8;
            w.bytes_mut()[1] = 0;
            w.bytes_mut()[2] = 0;
        }
        let mut handles = Vec::new();
        for t in 0..8u32 {
            let bm = Arc::clone(&bm);
            handles.push(std::thread::spawn(move || {
                let mut x = 0x9E37u32.wrapping_mul(t + 1) | 1;
                for i in 0..1_500u32 {
                    x ^= x << 13;
                    x ^= x >> 17;
                    x ^= x << 5;
                    let page = x % 24;
                    // Exhaustion is possible, not a bug: 8 threads over 3
                    // frames can all hold pins at once, and under a loaded
                    // machine the brief retry window inside `pin` may
                    // expire. Only *corruption* fails the test.
                    let g = match bm.pin(page) {
                        Ok(g) => g,
                        Err(StorageError::BufferExhausted) => continue,
                        Err(e) => panic!("{e}"),
                    };
                    if (x >> 8).is_multiple_of(3) {
                        let mut w = g.write();
                        let v = (t.wrapping_mul(31).wrapping_add(i)) as u8;
                        w.bytes_mut()[1] = v;
                        w.bytes_mut()[2] = v;
                    } else {
                        let r = g.read();
                        assert_eq!(r.bytes()[0], page as u8, "page {page} corrupted");
                        assert_eq!(
                            r.bytes()[1],
                            r.bytes()[2],
                            "page {page}: torn write observed"
                        );
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn misses_wait_for_inflight_io_instead_of_failing() {
        // More threads than frames over a *slow* disk: while two loads are
        // in flight both frames are reserved, and the third thread's miss
        // used to fail with a spurious BufferExhausted. With the wait on
        // the in-flight condvar, every pin succeeds.
        let stats = IoStats::new_shared();
        let backend = Arc::new(crate::disk::ThrottledDisk::new(
            MemStorage::new(512).unwrap(),
            300,
            600,
        ));
        backend.grow(16).unwrap();
        let bm = Arc::new(BufferManager::new(backend, 2, EvictionPolicy::Lru, stats));
        let mut handles = Vec::new();
        for t in 0..3u32 {
            let bm = Arc::clone(&bm);
            handles.push(std::thread::spawn(move || {
                let mut x = t.wrapping_mul(0xABCD) | 1;
                for _ in 0..120 {
                    x ^= x << 13;
                    x ^= x >> 17;
                    x ^= x << 5;
                    let page = x % 16;
                    // Every pin must succeed: transient reservation of all
                    // frames is never an error.
                    let g = bm.pin(page).expect("pin must wait, not fail");
                    g.write().bytes_mut()[3] = page as u8;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn concurrent_read_pin_storm_stays_clean() {
        // The parallel-query workload: many reader threads taking *short*
        // read pins over a pool much smaller than the working set, on a
        // slow disk, with zero writers. Every pin must succeed (misses
        // wait for in-flight loads instead of failing with
        // BufferExhausted), every page must read back its seeded marker,
        // and — since nobody dirties a frame — eviction under a read-only
        // storm must never write a single page back.
        let stats = IoStats::new_shared();
        let backend = Arc::new(crate::disk::ThrottledDisk::new(
            MemStorage::new(512).unwrap(),
            150,
            300,
        ));
        backend.grow(48).unwrap();
        let bm = Arc::new(BufferManager::new(
            backend,
            6,
            EvictionPolicy::Lru,
            Arc::clone(&stats),
        ));
        for p in 0..48u32 {
            let g = bm.pin(p).unwrap();
            g.write().bytes_mut()[0] = p as u8;
        }
        bm.flush_all().unwrap();
        let writes_after_seed = stats.snapshot().physical_writes;
        let mut handles = Vec::new();
        for t in 0..8u32 {
            let bm = Arc::clone(&bm);
            handles.push(std::thread::spawn(move || {
                let mut x = 0xC0FFEEu32.wrapping_mul(t + 1) | 1;
                for _ in 0..400 {
                    x ^= x << 13;
                    x ^= x >> 17;
                    x ^= x << 5;
                    let page = x % 48;
                    let g = bm.pin(page).expect("read pin must wait, not fail");
                    assert_eq!(g.read().bytes()[0], page as u8, "page {page} corrupted");
                    // Pin dropped immediately: short pins are the contract
                    // record-granular scans rely on.
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            stats.snapshot().physical_writes,
            writes_after_seed,
            "read-only storm wrote pages back"
        );
    }

    #[test]
    fn scan_hints_cannot_evict_beyond_the_cold_cap() {
        // 16 frames → cold cap 2. Fill the pool with a normal-hinted
        // working set, then stream 64 scan-hinted pages through: the scan
        // must recycle within its 2-frame allowance, so at most 2 of the
        // 16 working-set pages may be displaced, no matter how long the
        // scan runs.
        let (bm, stats) = pool(16, EvictionPolicy::ScanResistant);
        for p in 0..16u32 {
            drop(bm.pin(p).unwrap());
        }
        let before = stats.snapshot();
        for p in 100..164u32 {
            let g = bm.pin_hinted(p, AccessHint::Scan).unwrap();
            let _ = g.read().bytes()[0];
        }
        let st = bm.state.lock();
        let survivors = (0..16u32).filter(|p| st.table.contains_key(p)).count();
        drop(st);
        assert!(
            survivors >= 14,
            "scan displaced {} working-set pages; the cold cap allows 2",
            16 - survivors
        );
        let delta = stats.snapshot().since(&before);
        assert_eq!(delta.scan_misses, 64);
        assert_eq!(delta.scan_hits, 0);
        assert_eq!(
            delta.normal_evictions, 0,
            "only the scan evicted during the stream"
        );
    }

    #[test]
    fn normal_hit_promotes_a_scanned_page_out_of_the_cold_set() {
        let (bm, _) = pool(16, EvictionPolicy::ScanResistant);
        for p in 0..14u32 {
            drop(bm.pin(p).unwrap());
        }
        // Page 40 arrives via scan (cold), then a point access adopts it.
        drop(bm.pin_hinted(40, AccessHint::Scan).unwrap());
        drop(bm.pin(40).unwrap());
        // A long scan stream may recycle the cold allowance freely, but
        // the promoted page is working set now and must survive.
        for p in 100..150u32 {
            drop(bm.pin_hinted(p, AccessHint::Scan).unwrap());
        }
        let st = bm.state.lock();
        assert!(st.table.contains_key(&40), "promoted page was evicted");
    }

    #[test]
    fn lru_ignores_scan_hints_and_flushes_the_working_set() {
        // The ablation baseline the scan_cache bench measures against:
        // under plain LRU the same scan stream displaces everything.
        let (bm, _) = pool(8, EvictionPolicy::Lru);
        for p in 0..8u32 {
            drop(bm.pin(p).unwrap());
        }
        for p in 100..132u32 {
            drop(bm.pin_hinted(p, AccessHint::Scan).unwrap());
        }
        let st = bm.state.lock();
        let survivors = (0..8u32).filter(|p| st.table.contains_key(p)).count();
        assert_eq!(survivors, 0, "LRU kept {survivors} pages under a scan");
    }

    #[test]
    fn prefetch_loads_pages_and_demand_pins_hit() {
        let (bm, stats) = pool(8, EvictionPolicy::Lru);
        assert_eq!(bm.prefetch(&[3, 4, 5]).unwrap(), 3);
        let before = stats.snapshot();
        for p in 3..6u32 {
            drop(bm.pin(p).unwrap());
        }
        let delta = stats.snapshot().since(&before);
        assert_eq!(delta.buffer_hits, 3, "prefetched pages must hit");
        assert_eq!(delta.physical_reads, 0);
        // Resident and in-flight pages are skipped: nothing re-read.
        assert_eq!(bm.prefetch(&[3, 4, 5]).unwrap(), 0);
    }

    #[test]
    fn prefetch_skips_dirty_victims_and_stays_write_free() {
        // A 2-frame pool whose every frame is dirty: prefetch must give
        // up rather than write anything back.
        let (bm, stats) = pool(2, EvictionPolicy::Lru);
        for p in 0..2u32 {
            let g = bm.pin(p).unwrap();
            g.write().bytes_mut()[0] = 1;
        }
        assert_eq!(bm.prefetch(&[10, 11]).unwrap(), 0);
        assert_eq!(stats.snapshot().physical_writes, 0);
    }

    #[test]
    fn prefetch_under_scan_resistance_respects_the_cold_cap() {
        let (bm, _) = pool(16, EvictionPolicy::ScanResistant);
        for p in 0..16u32 {
            drop(bm.pin(p).unwrap());
        }
        // Read-ahead of a whole "document": only the cold allowance may
        // be claimed, the working set stays resident.
        let want: Vec<PageId> = (100..140).collect();
        let got = bm.prefetch(&want).unwrap();
        assert!(got <= 2, "prefetch claimed {got} frames; cap is 2");
        let st = bm.state.lock();
        let survivors = (0..16u32).filter(|p| st.table.contains_key(p)).count();
        assert!(survivors >= 14);
    }

    #[test]
    fn concurrent_scan_and_point_pins_keep_the_working_set_resident() {
        // The scan_cache bench's workload in miniature, as a correctness
        // stress: one thread streams scan-hinted misses while others
        // hammer a small hot set with normal pins. Every access must
        // return the right bytes, and the hot set must stay resident.
        let stats = IoStats::new_shared();
        let backend = Arc::new(MemStorage::new(512).unwrap());
        backend.grow(256).unwrap();
        let bm = Arc::new(BufferManager::new(
            backend,
            32,
            EvictionPolicy::ScanResistant,
            stats,
        ));
        for p in 0..256u32 {
            let g = bm.pin(p).unwrap();
            g.write().bytes_mut()[0] = p as u8;
        }
        bm.flush_all().unwrap();
        bm.clear().unwrap();
        let hot: Vec<PageId> = (0..8).collect();
        for &p in &hot {
            drop(bm.pin(p).unwrap());
        }
        let scanner = {
            let bm = Arc::clone(&bm);
            std::thread::spawn(move || {
                for pass in 0..4 {
                    for p in 8..256u32 {
                        let g = bm.pin_hinted(p, AccessHint::Scan).unwrap();
                        assert_eq!(g.read().bytes()[0], p as u8, "pass {pass}");
                    }
                }
            })
        };
        let mut pointers = Vec::new();
        for t in 0..2u32 {
            let bm = Arc::clone(&bm);
            let hot = hot.clone();
            pointers.push(std::thread::spawn(move || {
                let mut x = 0xBEEF ^ t;
                for _ in 0..4_000 {
                    x ^= x << 13;
                    x ^= x >> 17;
                    x ^= x << 5;
                    let p = hot[(x as usize) % hot.len()];
                    let g = bm.pin(p).unwrap();
                    assert_eq!(g.read().bytes()[0], p as u8);
                }
            }));
        }
        scanner.join().unwrap();
        for h in pointers {
            h.join().unwrap();
        }
        // After the storm the hot set is still resident: point misses
        // stay bounded by the cold allowance, not the scan volume.
        let st = bm.state.lock();
        let survivors = hot.iter().filter(|p| st.table.contains_key(p)).count();
        assert!(
            survivors >= hot.len() - 4,
            "hot set flushed by scan: {survivors}/8 resident"
        );
    }

    #[test]
    fn concurrent_readers_on_distinct_pages() {
        let (bm, _) = pool(8, EvictionPolicy::Lru);
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let bm = Arc::clone(&bm);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u32 {
                    let page = (t * 8 + i % 8) % 32;
                    let g = bm.pin(page).unwrap();
                    let _ = g.read().bytes()[0];
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
