//! Disk backends.
//!
//! §2.1: the record manager "accesses raw disks or file system files". The
//! [`DiskBackend`] trait abstracts over page-granular storage;
//! [`MemStorage`] backs tests and simulations, [`FileStorage`] persists to a
//! single file. The measurement-oriented [`crate::SimDisk`] wraps either and
//! charges a mechanical-disk cost model.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::{StorageError, StorageResult};
use crate::rid::PageId;

/// Page-granular storage. Implementations must be thread-safe; the buffer
/// manager may issue reads and writes from multiple threads.
pub trait DiskBackend: Send + Sync {
    /// Page size this backend was created with.
    fn page_size(&self) -> usize;

    /// Reads page `page` into `buf` (`buf.len() == page_size`).
    fn read_page(&self, page: PageId, buf: &mut [u8]) -> StorageResult<()>;

    /// Reads a batch of pages in one request: `reqs[i].0` into
    /// `reqs[i].1`. The default implementation loops
    /// [`read_page`](Self::read_page); backends whose service time has a
    /// fixed per-request component (seek + rotation on a mechanical disk)
    /// override it so a batch costs less than the sum of single reads.
    /// The buffer manager's prefetch path issues its read-ahead through
    /// this method. On error, pages before the failing request may
    /// already have been filled.
    fn read_pages(&self, reqs: &mut [(PageId, &mut [u8])]) -> StorageResult<()> {
        for (page, buf) in reqs.iter_mut() {
            self.read_page(*page, buf)?;
        }
        Ok(())
    }

    /// Writes page `page` from `buf` (`buf.len() == page_size`).
    fn write_page(&self, page: PageId, buf: &[u8]) -> StorageResult<()>;

    /// Number of pages currently allocated.
    fn page_count(&self) -> u64;

    /// Extends the store to hold at least `new_count` pages (zero-filled).
    fn grow(&self, new_count: u64) -> StorageResult<()>;

    /// Flushes to durable storage where applicable.
    fn sync(&self) -> StorageResult<()>;
}

// A shared handle is itself a backend: the crash harness keeps an
// `Arc<MemStorage>` so the page store survives dropping the repository
// that wrote it (simulated reboot), re-wrapping the same pages under a
// fresh fault controller.
impl<B: DiskBackend + ?Sized> DiskBackend for Arc<B> {
    fn page_size(&self) -> usize {
        (**self).page_size()
    }
    fn read_page(&self, page: PageId, buf: &mut [u8]) -> StorageResult<()> {
        (**self).read_page(page, buf)
    }
    fn read_pages(&self, reqs: &mut [(PageId, &mut [u8])]) -> StorageResult<()> {
        (**self).read_pages(reqs)
    }
    fn write_page(&self, page: PageId, buf: &[u8]) -> StorageResult<()> {
        (**self).write_page(page, buf)
    }
    fn page_count(&self) -> u64 {
        (**self).page_count()
    }
    fn grow(&self, new_count: u64) -> StorageResult<()> {
        (**self).grow(new_count)
    }
    fn sync(&self) -> StorageResult<()> {
        (**self).sync()
    }
}

/// In-memory page store.
pub struct MemStorage {
    page_size: usize,
    pages: Mutex<Vec<Box<[u8]>>>,
}

impl MemStorage {
    /// Creates an empty in-memory store with the given page size.
    pub fn new(page_size: usize) -> StorageResult<MemStorage> {
        crate::validate_page_size(page_size)?;
        Ok(MemStorage {
            page_size,
            pages: Mutex::with_rank(&parking_lot::rank::DEVICE, Vec::new()),
        })
    }
}

impl DiskBackend for MemStorage {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn read_page(&self, page: PageId, buf: &mut [u8]) -> StorageResult<()> {
        let pages = self.pages.lock();
        let src = pages
            .get(page as usize)
            .ok_or(StorageError::PageOutOfBounds(page))?;
        buf.copy_from_slice(src);
        Ok(())
    }

    fn write_page(&self, page: PageId, buf: &[u8]) -> StorageResult<()> {
        let mut pages = self.pages.lock();
        let dst = pages
            .get_mut(page as usize)
            .ok_or(StorageError::PageOutOfBounds(page))?;
        dst.copy_from_slice(buf);
        Ok(())
    }

    fn page_count(&self) -> u64 {
        self.pages.lock().len() as u64
    }

    fn grow(&self, new_count: u64) -> StorageResult<()> {
        let mut pages = self.pages.lock();
        while (pages.len() as u64) < new_count {
            pages.push(vec![0u8; self.page_size].into_boxed_slice());
        }
        Ok(())
    }

    fn sync(&self) -> StorageResult<()> {
        Ok(())
    }
}

/// File-backed page store. The paper's measurements used "direct disk
/// access and no operating system buffering"; portable Rust cannot disable
/// the OS page cache, which is one reason the harness reports modelled disk
/// time from [`crate::SimDisk`] instead of wall-clock (see DESIGN.md).
pub struct FileStorage {
    page_size: usize,
    file: Mutex<File>,
    page_count: AtomicU64,
}

impl FileStorage {
    /// Creates (truncating) a new store file.
    pub fn create<P: AsRef<Path>>(path: P, page_size: usize) -> StorageResult<FileStorage> {
        crate::validate_page_size(page_size)?;
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FileStorage {
            page_size,
            file: Mutex::with_rank(&parking_lot::rank::DEVICE, file),
            page_count: AtomicU64::new(0),
        })
    }

    /// Opens an existing store file, validating that it really is a NATIX
    /// store of the requested page size before any page is interpreted:
    ///
    /// * a file too short to hold the header page, or whose length is not
    ///   a whole number of pages, fails with [`StorageError::Corrupt`];
    /// * a file without the NATIX magic fails with
    ///   [`StorageError::Corrupt`];
    /// * a store formatted with a different page size fails with
    ///   [`StorageError::WrongPageSize`] carrying both sizes.
    pub fn open<P: AsRef<Path>>(path: P, page_size: usize) -> StorageResult<FileStorage> {
        crate::validate_page_size(page_size)?;
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        // The header prefix (16-byte page header + magic + version + page
        // size) lives in the first 32 bytes regardless of page size.
        let mut head = [0u8; 32];
        if len < head.len() as u64 {
            return Err(StorageError::Corrupt(format!(
                "file of {len} bytes is too short to be a NATIX store"
            )));
        }
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(&mut head)?;
        if &head[16..24] != b"NATIXSTO" {
            return Err(StorageError::Corrupt(
                "missing NATIX magic: not a NATIX store".into(),
            ));
        }
        let stored_ps = u32::from_le_bytes([head[28], head[29], head[30], head[31]]) as usize;
        if stored_ps != page_size {
            return Err(StorageError::WrongPageSize {
                stored: stored_ps,
                requested: page_size,
            });
        }
        if len % page_size as u64 != 0 {
            return Err(StorageError::Corrupt(format!(
                "file length {len} is not a multiple of page size {page_size}: truncated store"
            )));
        }
        Ok(FileStorage {
            page_size,
            file: Mutex::with_rank(&parking_lot::rank::DEVICE, file),
            page_count: AtomicU64::new(len / page_size as u64),
        })
    }
}

impl DiskBackend for FileStorage {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn read_page(&self, page: PageId, buf: &mut [u8]) -> StorageResult<()> {
        if (page as u64) >= self.page_count() {
            return Err(StorageError::PageOutOfBounds(page));
        }
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(page as u64 * self.page_size as u64))?;
        file.read_exact(buf)?;
        Ok(())
    }

    fn write_page(&self, page: PageId, buf: &[u8]) -> StorageResult<()> {
        if (page as u64) >= self.page_count() {
            return Err(StorageError::PageOutOfBounds(page));
        }
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(page as u64 * self.page_size as u64))?;
        file.write_all(buf)?;
        Ok(())
    }

    fn page_count(&self) -> u64 {
        self.page_count.load(Ordering::Acquire)
    }

    fn grow(&self, new_count: u64) -> StorageResult<()> {
        let cur = self.page_count();
        if new_count <= cur {
            return Ok(());
        }
        let file = self.file.lock();
        file.set_len(new_count * self.page_size as u64)?;
        self.page_count.store(new_count, Ordering::Release);
        Ok(())
    }

    fn sync(&self) -> StorageResult<()> {
        self.file.lock().sync_data()?;
        Ok(())
    }
}

/// A backend wrapper that *sleeps* a fixed service time per page access
/// before delegating to the inner backend.
///
/// [`crate::SimDisk`] charges a mechanical-disk cost model to a virtual
/// clock without slowing anything down — right for the paper's single-
/// threaded measurements, useless for concurrency experiments: on a
/// RAM-backed store every I/O completes instantly, so overlapping I/O
/// stalls (the whole point of concurrent ingestion) cannot be observed.
/// `ThrottledDisk` makes the stall real. Because the buffer manager
/// performs all disk I/O outside its pool mutex, stalls of different
/// threads overlap — one writer's eviction write-back no longer blocks
/// another writer's parsing or page fills.
pub struct ThrottledDisk<B> {
    inner: B,
    read_latency: std::time::Duration,
    write_latency: std::time::Duration,
    sync_latency: std::time::Duration,
    /// Per-page service time for the 2nd…nth page of a batched read: the
    /// sequential-transfer share, without the per-request seek+rotation
    /// that `read_latency` models. Defaults to ¼ of the read latency.
    batch_read_latency: std::time::Duration,
}

impl<B: DiskBackend> ThrottledDisk<B> {
    /// Wraps `inner`, charging the given per-page service times. `sync`
    /// is free; see [`with_sync_latency`](Self::with_sync_latency).
    pub fn new(inner: B, read_latency_us: u64, write_latency_us: u64) -> ThrottledDisk<B> {
        ThrottledDisk {
            inner,
            read_latency: std::time::Duration::from_micros(read_latency_us),
            write_latency: std::time::Duration::from_micros(write_latency_us),
            sync_latency: std::time::Duration::ZERO,
            batch_read_latency: std::time::Duration::from_micros(read_latency_us / 4),
        }
    }

    /// Charges `sync_latency_us` per `sync` call, so durability benches
    /// reflect real fsync cost (a barrier plus device cache flush, not a
    /// page transfer).
    pub fn with_sync_latency(mut self, sync_latency_us: u64) -> ThrottledDisk<B> {
        self.sync_latency = std::time::Duration::from_micros(sync_latency_us);
        self
    }

    /// Overrides the per-page transfer share charged to the 2nd…nth page
    /// of a [`read_pages`](DiskBackend::read_pages) batch.
    pub fn with_batch_read_latency(mut self, batch_read_latency_us: u64) -> ThrottledDisk<B> {
        self.batch_read_latency = std::time::Duration::from_micros(batch_read_latency_us);
        self
    }
}

impl<B: DiskBackend> DiskBackend for ThrottledDisk<B> {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn read_page(&self, page: PageId, buf: &mut [u8]) -> StorageResult<()> {
        std::thread::sleep(self.read_latency);
        self.inner.read_page(page, buf)
    }

    fn read_pages(&self, reqs: &mut [(PageId, &mut [u8])]) -> StorageResult<()> {
        // One seek+rotation for the whole batch, then sequential
        // transfers: the first page pays the full per-page service time,
        // every further page only the transfer share. This is what makes
        // prefetch overlap honestly measurable — a batch of n is cheaper
        // than n demand reads, but not free.
        if let Some(extra) = reqs.len().checked_sub(1) {
            std::thread::sleep(self.read_latency + self.batch_read_latency * extra as u32);
        }
        for (page, buf) in reqs.iter_mut() {
            self.inner.read_page(*page, buf)?;
        }
        Ok(())
    }

    fn write_page(&self, page: PageId, buf: &[u8]) -> StorageResult<()> {
        std::thread::sleep(self.write_latency);
        self.inner.write_page(page, buf)
    }

    fn page_count(&self) -> u64 {
        self.inner.page_count()
    }

    fn grow(&self, new_count: u64) -> StorageResult<()> {
        // Growth is metadata (a file `set_len` / vector resize), not a
        // page transfer: unthrottled.
        self.inner.grow(new_count)
    }

    fn sync(&self) -> StorageResult<()> {
        if !self.sync_latency.is_zero() {
            std::thread::sleep(self.sync_latency);
        }
        self.inner.sync()
    }
}

/// Shared write budget for crash injection. One controller is shared by a
/// [`FaultDisk`] (page writes) and a [`crate::wal::MemLogDevice`] (log
/// writes); every write consumes one unit, and once the budget is
/// exhausted the "machine" is dead: all further writes and syncs fail
/// (fail-stop). Reads and file growth keep succeeding — the crash harness
/// still drives the workload to completion, collecting errors.
pub struct FaultControl {
    remaining: AtomicI64,
    dead: AtomicBool,
}

impl FaultControl {
    /// A controller that allows exactly `budget` writes before dying.
    pub fn with_budget(budget: u64) -> FaultControl {
        FaultControl {
            remaining: AtomicI64::new(budget.min(i64::MAX as u64) as i64),
            dead: AtomicBool::new(false),
        }
    }

    /// A controller that never trips.
    pub fn unlimited() -> FaultControl {
        FaultControl::with_budget(i64::MAX as u64)
    }

    fn crash_error() -> StorageError {
        StorageError::Io(std::io::Error::other(
            "injected crash: write budget exhausted",
        ))
    }

    /// Charges one write against the budget; kills the controller when it
    /// runs out.
    pub fn consume_write(&self) -> StorageResult<()> {
        if self.dead.load(Ordering::Acquire) {
            return Err(Self::crash_error());
        }
        let left = self.remaining.fetch_sub(1, Ordering::AcqRel);
        if left <= 0 {
            self.dead.store(true, Ordering::Release);
            return Err(Self::crash_error());
        }
        Ok(())
    }

    /// Fails once the controller is dead (used by `sync`).
    pub fn check_alive(&self) -> StorageResult<()> {
        if self.dead.load(Ordering::Acquire) {
            Err(Self::crash_error())
        } else {
            Ok(())
        }
    }

    /// True once the injected crash has happened.
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }

    /// Writes still allowed (for harness diagnostics).
    pub fn writes_remaining(&self) -> i64 {
        self.remaining.load(Ordering::Acquire).max(0)
    }
}

/// Fault-injecting backend wrapper (sibling of [`ThrottledDisk`]): page
/// writes draw on a shared [`FaultControl`] budget and fail permanently
/// once it is exhausted, simulating a kill at an arbitrary I/O point.
pub struct FaultDisk<B> {
    inner: B,
    control: Arc<FaultControl>,
}

impl<B: DiskBackend> FaultDisk<B> {
    /// Wraps `inner` under the given controller.
    pub fn new(inner: B, control: Arc<FaultControl>) -> FaultDisk<B> {
        FaultDisk { inner, control }
    }

    /// The shared controller.
    pub fn control(&self) -> &Arc<FaultControl> {
        &self.control
    }
}

impl<B: DiskBackend> DiskBackend for FaultDisk<B> {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn read_page(&self, page: PageId, buf: &mut [u8]) -> StorageResult<()> {
        // Reads survive the "crash": the process still sees what reached
        // the store before death. Durability is judged at reopen.
        self.inner.read_page(page, buf)
    }

    fn read_pages(&self, reqs: &mut [(PageId, &mut [u8])]) -> StorageResult<()> {
        self.inner.read_pages(reqs)
    }

    fn write_page(&self, page: PageId, buf: &[u8]) -> StorageResult<()> {
        self.control.consume_write()?;
        self.inner.write_page(page, buf)
    }

    fn page_count(&self) -> u64 {
        self.inner.page_count()
    }

    fn grow(&self, new_count: u64) -> StorageResult<()> {
        // Growth is metadata, not a page transfer.
        self.inner.grow(new_count)
    }

    fn sync(&self) -> StorageResult<()> {
        self.control.check_alive()?;
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(backend: &dyn DiskBackend) {
        let ps = backend.page_size();
        backend.grow(3).unwrap();
        assert_eq!(backend.page_count(), 3);
        let mut page = vec![0u8; ps];
        page[0] = 0xAB;
        page[ps - 1] = 0xCD;
        backend.write_page(1, &page).unwrap();
        let mut out = vec![0u8; ps];
        backend.read_page(1, &mut out).unwrap();
        assert_eq!(out, page);
        backend.read_page(0, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0), "fresh pages are zeroed");
        assert!(backend.read_page(3, &mut out).is_err());
        assert!(backend.write_page(99, &page).is_err());
        backend.sync().unwrap();
    }

    #[test]
    fn mem_backend() {
        let m = MemStorage::new(1024).unwrap();
        exercise(&m);
    }

    #[test]
    fn read_pages_default_fills_every_buffer() {
        let m = MemStorage::new(512).unwrap();
        m.grow(4).unwrap();
        let mut seed = vec![0u8; 512];
        seed[0] = 7;
        m.write_page(2, &seed).unwrap();
        seed[0] = 9;
        m.write_page(3, &seed).unwrap();
        let mut b0 = vec![0u8; 512];
        let mut b1 = vec![0u8; 512];
        let mut reqs = vec![(2, b0.as_mut_slice()), (3, b1.as_mut_slice())];
        m.read_pages(&mut reqs).unwrap();
        drop(reqs);
        assert_eq!((b0[0], b1[0]), (7, 9));
        // An out-of-bounds page surfaces the per-page error.
        let mut reqs = vec![(99, b0.as_mut_slice())];
        assert!(m.read_pages(&mut reqs).is_err());
    }

    #[test]
    fn throttled_batch_read_is_cheaper_than_single_reads() {
        // 20 ms per demand read, 1 ms per extra batched page: a batch of
        // 8 costs ~27 ms where 8 single reads would cost 160 ms. The
        // upper bound is loose so scheduler noise cannot flake it.
        let d = ThrottledDisk::new(MemStorage::new(512).unwrap(), 20_000, 0)
            .with_batch_read_latency(1_000);
        d.grow(8).unwrap();
        let mut bufs = vec![vec![0u8; 512]; 8];
        let mut reqs: Vec<(PageId, &mut [u8])> = bufs
            .iter_mut()
            .enumerate()
            .map(|(i, b)| (i as PageId, b.as_mut_slice()))
            .collect();
        let t0 = std::time::Instant::now();
        d.read_pages(&mut reqs).unwrap();
        let elapsed = t0.elapsed();
        assert!(elapsed >= std::time::Duration::from_millis(27));
        assert!(
            elapsed < std::time::Duration::from_millis(80),
            "batch took {elapsed:?}: per-batch model not applied"
        );
    }

    /// Stamps a minimal valid NATIX header (magic + page size) on page 0
    /// so `FileStorage::open`'s validation accepts the file.
    fn stamp_header(backend: &dyn DiskBackend) {
        let ps = backend.page_size();
        let mut page = vec![0u8; ps];
        backend.read_page(0, &mut page).unwrap();
        page[16..24].copy_from_slice(b"NATIXSTO");
        page[28..32].copy_from_slice(&(ps as u32).to_le_bytes());
        backend.write_page(0, &page).unwrap();
    }

    #[test]
    fn file_backend_roundtrip_and_reopen() {
        let dir = std::env::temp_dir().join(format!("natix-disk-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.natix");
        {
            let f = FileStorage::create(&path, 1024).unwrap();
            exercise(&f);
            stamp_header(&f);
        }
        {
            let f = FileStorage::open(&path, 1024).unwrap();
            assert_eq!(f.page_count(), 3);
            let mut out = vec![0u8; 1024];
            f.read_page(1, &mut out).unwrap();
            assert_eq!(out[0], 0xAB);
            assert_eq!(out[1023], 0xCD);
        }
        assert!(
            FileStorage::open(&path, 2048).is_err(),
            "wrong page size detected"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_rejects_wrong_page_size_with_typed_error() {
        let dir = std::env::temp_dir().join(format!("natix-disk-ps-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.natix");
        {
            let f = FileStorage::create(&path, 1024).unwrap();
            f.grow(2).unwrap();
            stamp_header(&f);
        }
        match FileStorage::open(&path, 2048) {
            Err(StorageError::WrongPageSize { stored, requested }) => {
                assert_eq!(stored, 1024);
                assert_eq!(requested, 2048);
            }
            Err(other) => panic!("expected WrongPageSize, got {other:?}"),
            Ok(_) => panic!("expected WrongPageSize, got Ok"),
        }
        // The right page size still opens.
        FileStorage::open(&path, 1024).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_rejects_truncated_and_corrupt_files() {
        let dir = std::env::temp_dir().join(format!("natix-disk-corrupt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Too short to hold a header at all.
        let short = dir.join("short.natix");
        std::fs::write(&short, b"tiny").unwrap();
        assert!(matches!(
            FileStorage::open(&short, 1024),
            Err(StorageError::Corrupt(_))
        ));
        // Long enough but no NATIX magic.
        let junk = dir.join("junk.natix");
        std::fs::write(&junk, vec![0x5A; 1024]).unwrap();
        assert!(matches!(
            FileStorage::open(&junk, 1024),
            Err(StorageError::Corrupt(_))
        ));
        // Valid header but a torn tail (length not a page multiple).
        let torn = dir.join("torn.natix");
        {
            let f = FileStorage::create(&torn, 1024).unwrap();
            f.grow(2).unwrap();
            stamp_header(&f);
        }
        let bytes = std::fs::read(&torn).unwrap();
        std::fs::write(&torn, &bytes[..1536]).unwrap();
        assert!(matches!(
            FileStorage::open(&torn, 1024),
            Err(StorageError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn throttled_sync_pays_latency() {
        let t = ThrottledDisk::new(MemStorage::new(512).unwrap(), 0, 0).with_sync_latency(2_000);
        let t0 = std::time::Instant::now();
        for _ in 0..3 {
            t.sync().unwrap();
        }
        assert!(
            t0.elapsed() >= std::time::Duration::from_millis(6),
            "three 2 ms syncs must take at least 6 ms"
        );
    }

    #[test]
    fn fault_disk_dies_after_budget() {
        let ctl = Arc::new(FaultControl::with_budget(2));
        let d = FaultDisk::new(MemStorage::new(512).unwrap(), Arc::clone(&ctl));
        d.grow(4).unwrap();
        let page = vec![7u8; 512];
        d.write_page(0, &page).unwrap();
        d.write_page(1, &page).unwrap();
        assert!(!ctl.is_dead());
        assert!(d.write_page(2, &page).is_err(), "third write trips");
        assert!(ctl.is_dead());
        assert!(d.write_page(3, &page).is_err(), "stays dead");
        assert!(d.sync().is_err(), "sync fails after death");
        // Reads still work: the surviving state is inspectable.
        let mut out = vec![0u8; 512];
        d.read_page(0, &mut out).unwrap();
        assert_eq!(out, page);
    }

    #[test]
    fn throttled_backend_delegates() {
        let t = ThrottledDisk::new(MemStorage::new(1024).unwrap(), 0, 0);
        exercise(&t);
    }

    #[test]
    fn throttled_backend_sleeps() {
        let t = ThrottledDisk::new(MemStorage::new(512).unwrap(), 0, 2_000);
        t.grow(1).unwrap();
        let page = vec![1u8; 512];
        let t0 = std::time::Instant::now();
        for _ in 0..3 {
            t.write_page(0, &page).unwrap();
        }
        assert!(
            t0.elapsed() >= std::time::Duration::from_millis(6),
            "three 2 ms writes must take at least 6 ms"
        );
    }

    #[test]
    fn grow_is_monotonic() {
        let m = MemStorage::new(512).unwrap();
        m.grow(5).unwrap();
        m.grow(2).unwrap();
        assert_eq!(m.page_count(), 5);
    }
}
