//! Disk backends.
//!
//! §2.1: the record manager "accesses raw disks or file system files". The
//! [`DiskBackend`] trait abstracts over page-granular storage;
//! [`MemStorage`] backs tests and simulations, [`FileStorage`] persists to a
//! single file. The measurement-oriented [`crate::SimDisk`] wraps either and
//! charges a mechanical-disk cost model.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::error::{StorageError, StorageResult};
use crate::rid::PageId;

/// Page-granular storage. Implementations must be thread-safe; the buffer
/// manager may issue reads and writes from multiple threads.
pub trait DiskBackend: Send + Sync {
    /// Page size this backend was created with.
    fn page_size(&self) -> usize;

    /// Reads page `page` into `buf` (`buf.len() == page_size`).
    fn read_page(&self, page: PageId, buf: &mut [u8]) -> StorageResult<()>;

    /// Writes page `page` from `buf` (`buf.len() == page_size`).
    fn write_page(&self, page: PageId, buf: &[u8]) -> StorageResult<()>;

    /// Number of pages currently allocated.
    fn page_count(&self) -> u64;

    /// Extends the store to hold at least `new_count` pages (zero-filled).
    fn grow(&self, new_count: u64) -> StorageResult<()>;

    /// Flushes to durable storage where applicable.
    fn sync(&self) -> StorageResult<()>;
}

/// In-memory page store.
pub struct MemStorage {
    page_size: usize,
    pages: Mutex<Vec<Box<[u8]>>>,
}

impl MemStorage {
    /// Creates an empty in-memory store with the given page size.
    pub fn new(page_size: usize) -> StorageResult<MemStorage> {
        crate::validate_page_size(page_size)?;
        Ok(MemStorage {
            page_size,
            pages: Mutex::new(Vec::new()),
        })
    }
}

impl DiskBackend for MemStorage {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn read_page(&self, page: PageId, buf: &mut [u8]) -> StorageResult<()> {
        let pages = self.pages.lock();
        let src = pages
            .get(page as usize)
            .ok_or(StorageError::PageOutOfBounds(page))?;
        buf.copy_from_slice(src);
        Ok(())
    }

    fn write_page(&self, page: PageId, buf: &[u8]) -> StorageResult<()> {
        let mut pages = self.pages.lock();
        let dst = pages
            .get_mut(page as usize)
            .ok_or(StorageError::PageOutOfBounds(page))?;
        dst.copy_from_slice(buf);
        Ok(())
    }

    fn page_count(&self) -> u64 {
        self.pages.lock().len() as u64
    }

    fn grow(&self, new_count: u64) -> StorageResult<()> {
        let mut pages = self.pages.lock();
        while (pages.len() as u64) < new_count {
            pages.push(vec![0u8; self.page_size].into_boxed_slice());
        }
        Ok(())
    }

    fn sync(&self) -> StorageResult<()> {
        Ok(())
    }
}

/// File-backed page store. The paper's measurements used "direct disk
/// access and no operating system buffering"; portable Rust cannot disable
/// the OS page cache, which is one reason the harness reports modelled disk
/// time from [`crate::SimDisk`] instead of wall-clock (see DESIGN.md).
pub struct FileStorage {
    page_size: usize,
    file: Mutex<File>,
    page_count: AtomicU64,
}

impl FileStorage {
    /// Creates (truncating) a new store file.
    pub fn create<P: AsRef<Path>>(path: P, page_size: usize) -> StorageResult<FileStorage> {
        crate::validate_page_size(page_size)?;
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FileStorage {
            page_size,
            file: Mutex::new(file),
            page_count: AtomicU64::new(0),
        })
    }

    /// Opens an existing store file; its length must be a whole number of
    /// pages of the given size.
    pub fn open<P: AsRef<Path>>(path: P, page_size: usize) -> StorageResult<FileStorage> {
        crate::validate_page_size(page_size)?;
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len % page_size as u64 != 0 {
            return Err(StorageError::Corrupt(format!(
                "file length {len} is not a multiple of page size {page_size}"
            )));
        }
        Ok(FileStorage {
            page_size,
            file: Mutex::new(file),
            page_count: AtomicU64::new(len / page_size as u64),
        })
    }
}

impl DiskBackend for FileStorage {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn read_page(&self, page: PageId, buf: &mut [u8]) -> StorageResult<()> {
        if (page as u64) >= self.page_count() {
            return Err(StorageError::PageOutOfBounds(page));
        }
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(page as u64 * self.page_size as u64))?;
        file.read_exact(buf)?;
        Ok(())
    }

    fn write_page(&self, page: PageId, buf: &[u8]) -> StorageResult<()> {
        if (page as u64) >= self.page_count() {
            return Err(StorageError::PageOutOfBounds(page));
        }
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(page as u64 * self.page_size as u64))?;
        file.write_all(buf)?;
        Ok(())
    }

    fn page_count(&self) -> u64 {
        self.page_count.load(Ordering::Acquire)
    }

    fn grow(&self, new_count: u64) -> StorageResult<()> {
        let cur = self.page_count();
        if new_count <= cur {
            return Ok(());
        }
        let file = self.file.lock();
        file.set_len(new_count * self.page_size as u64)?;
        self.page_count.store(new_count, Ordering::Release);
        Ok(())
    }

    fn sync(&self) -> StorageResult<()> {
        self.file.lock().sync_data()?;
        Ok(())
    }
}

/// A backend wrapper that *sleeps* a fixed service time per page access
/// before delegating to the inner backend.
///
/// [`crate::SimDisk`] charges a mechanical-disk cost model to a virtual
/// clock without slowing anything down — right for the paper's single-
/// threaded measurements, useless for concurrency experiments: on a
/// RAM-backed store every I/O completes instantly, so overlapping I/O
/// stalls (the whole point of concurrent ingestion) cannot be observed.
/// `ThrottledDisk` makes the stall real. Because the buffer manager
/// performs all disk I/O outside its pool mutex, stalls of different
/// threads overlap — one writer's eviction write-back no longer blocks
/// another writer's parsing or page fills.
pub struct ThrottledDisk<B> {
    inner: B,
    read_latency: std::time::Duration,
    write_latency: std::time::Duration,
}

impl<B: DiskBackend> ThrottledDisk<B> {
    /// Wraps `inner`, charging the given per-page service times.
    pub fn new(inner: B, read_latency_us: u64, write_latency_us: u64) -> ThrottledDisk<B> {
        ThrottledDisk {
            inner,
            read_latency: std::time::Duration::from_micros(read_latency_us),
            write_latency: std::time::Duration::from_micros(write_latency_us),
        }
    }
}

impl<B: DiskBackend> DiskBackend for ThrottledDisk<B> {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn read_page(&self, page: PageId, buf: &mut [u8]) -> StorageResult<()> {
        std::thread::sleep(self.read_latency);
        self.inner.read_page(page, buf)
    }

    fn write_page(&self, page: PageId, buf: &[u8]) -> StorageResult<()> {
        std::thread::sleep(self.write_latency);
        self.inner.write_page(page, buf)
    }

    fn page_count(&self) -> u64 {
        self.inner.page_count()
    }

    fn grow(&self, new_count: u64) -> StorageResult<()> {
        // Growth is metadata (a file `set_len` / vector resize), not a
        // page transfer: unthrottled.
        self.inner.grow(new_count)
    }

    fn sync(&self) -> StorageResult<()> {
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(backend: &dyn DiskBackend) {
        let ps = backend.page_size();
        backend.grow(3).unwrap();
        assert_eq!(backend.page_count(), 3);
        let mut page = vec![0u8; ps];
        page[0] = 0xAB;
        page[ps - 1] = 0xCD;
        backend.write_page(1, &page).unwrap();
        let mut out = vec![0u8; ps];
        backend.read_page(1, &mut out).unwrap();
        assert_eq!(out, page);
        backend.read_page(0, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0), "fresh pages are zeroed");
        assert!(backend.read_page(3, &mut out).is_err());
        assert!(backend.write_page(99, &page).is_err());
        backend.sync().unwrap();
    }

    #[test]
    fn mem_backend() {
        let m = MemStorage::new(1024).unwrap();
        exercise(&m);
    }

    #[test]
    fn file_backend_roundtrip_and_reopen() {
        let dir = std::env::temp_dir().join(format!("natix-disk-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.natix");
        {
            let f = FileStorage::create(&path, 1024).unwrap();
            exercise(&f);
        }
        {
            let f = FileStorage::open(&path, 1024).unwrap();
            assert_eq!(f.page_count(), 3);
            let mut out = vec![0u8; 1024];
            f.read_page(1, &mut out).unwrap();
            assert_eq!(out[0], 0xAB);
            assert_eq!(out[1023], 0xCD);
        }
        assert!(
            FileStorage::open(&path, 2048).is_err(),
            "wrong page size detected"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn throttled_backend_delegates() {
        let t = ThrottledDisk::new(MemStorage::new(1024).unwrap(), 0, 0);
        exercise(&t);
    }

    #[test]
    fn throttled_backend_sleeps() {
        let t = ThrottledDisk::new(MemStorage::new(512).unwrap(), 0, 2_000);
        t.grow(1).unwrap();
        let page = vec![1u8; 512];
        let t0 = std::time::Instant::now();
        for _ in 0..3 {
            t.write_page(0, &page).unwrap();
        }
        assert!(
            t0.elapsed() >= std::time::Duration::from_millis(6),
            "three 2 ms writes must take at least 6 ms"
        );
    }

    #[test]
    fn grow_is_monotonic() {
        let m = MemStorage::new(512).unwrap();
        m.grow(5).unwrap();
        m.grow(2).unwrap();
        assert_eq!(m.page_count(), 5);
    }
}
