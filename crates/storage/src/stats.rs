//! I/O statistics.
//!
//! The benchmark harness reproduces the paper's figures from these counters
//! plus the simulated-disk clock (see [`crate::simdisk`]). All counters are
//! atomics so a single `IoStats` can be shared by the disk backend, the
//! buffer manager and the harness without locking.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, thread-safe I/O and buffer counters.
#[derive(Debug, Default)]
pub struct IoStats {
    /// Pages read from the backend.
    pub physical_reads: AtomicU64,
    /// Pages written to the backend.
    pub physical_writes: AtomicU64,
    /// Buffer pool hits.
    pub buffer_hits: AtomicU64,
    /// Buffer pool misses (each implies a physical read).
    pub buffer_misses: AtomicU64,
    /// Simulated elapsed disk time in nanoseconds (filled by [`crate::SimDisk`]).
    pub sim_disk_ns: AtomicU64,
    /// Seeks charged by the simulated disk (non-sequential accesses).
    pub sim_seeks: AtomicU64,
}

impl IoStats {
    /// Creates a zeroed, shareable counter block.
    pub fn new_shared() -> Arc<IoStats> {
        Arc::new(IoStats::default())
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.physical_reads.store(0, Ordering::Relaxed);
        self.physical_writes.store(0, Ordering::Relaxed);
        self.buffer_hits.store(0, Ordering::Relaxed);
        self.buffer_misses.store(0, Ordering::Relaxed);
        self.sim_disk_ns.store(0, Ordering::Relaxed);
        self.sim_seeks.store(0, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot for reporting.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            physical_reads: self.physical_reads.load(Ordering::Relaxed),
            physical_writes: self.physical_writes.load(Ordering::Relaxed),
            buffer_hits: self.buffer_hits.load(Ordering::Relaxed),
            buffer_misses: self.buffer_misses.load(Ordering::Relaxed),
            sim_disk_ns: self.sim_disk_ns.load(Ordering::Relaxed),
            sim_seeks: self.sim_seeks.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn add_read(&self) {
        self.physical_reads.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_write(&self) {
        self.physical_writes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_hit(&self) {
        self.buffer_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_miss(&self) {
        self.buffer_misses.fetch_add(1, Ordering::Relaxed);
    }
}

/// Point-in-time copy of [`IoStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoSnapshot {
    pub physical_reads: u64,
    pub physical_writes: u64,
    pub buffer_hits: u64,
    pub buffer_misses: u64,
    pub sim_disk_ns: u64,
    pub sim_seeks: u64,
}

impl IoSnapshot {
    /// Simulated disk time in milliseconds — the unit of the paper's plots.
    pub fn sim_disk_ms(&self) -> f64 {
        self.sim_disk_ns as f64 / 1e6
    }

    /// Difference against an earlier snapshot.
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            physical_reads: self.physical_reads - earlier.physical_reads,
            physical_writes: self.physical_writes - earlier.physical_writes,
            buffer_hits: self.buffer_hits - earlier.buffer_hits,
            buffer_misses: self.buffer_misses - earlier.buffer_misses,
            sim_disk_ns: self.sim_disk_ns - earlier.sim_disk_ns,
            sim_seeks: self.sim_seeks - earlier.sim_seeks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_reset() {
        let s = IoStats::new_shared();
        s.add_read();
        s.add_read();
        s.add_write();
        s.add_hit();
        s.add_miss();
        let snap = s.snapshot();
        assert_eq!(snap.physical_reads, 2);
        assert_eq!(snap.physical_writes, 1);
        assert_eq!(snap.buffer_hits, 1);
        assert_eq!(snap.buffer_misses, 1);
        s.reset();
        assert_eq!(s.snapshot(), IoSnapshot::default());
    }

    #[test]
    fn since_subtracts() {
        let s = IoStats::new_shared();
        s.add_read();
        let a = s.snapshot();
        s.add_read();
        s.add_read();
        let b = s.snapshot();
        assert_eq!(b.since(&a).physical_reads, 2);
    }

    #[test]
    fn ms_conversion() {
        let s = IoStats::new_shared();
        s.sim_disk_ns.store(2_500_000, Ordering::Relaxed);
        assert!((s.snapshot().sim_disk_ms() - 2.5).abs() < 1e-9);
    }
}
