//! I/O statistics.
//!
//! The benchmark harness reproduces the paper's figures from these counters
//! plus the simulated-disk clock (see [`crate::simdisk`]). All counters are
//! atomics so a single `IoStats` can be shared by the disk backend, the
//! buffer manager and the harness without locking.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, thread-safe I/O and buffer counters.
#[derive(Debug, Default)]
pub struct IoStats {
    /// Pages read from the backend.
    pub physical_reads: AtomicU64,
    /// Pages written to the backend.
    pub physical_writes: AtomicU64,
    /// Buffer pool hits.
    pub buffer_hits: AtomicU64,
    /// Buffer pool misses (each implies a physical read).
    pub buffer_misses: AtomicU64,
    /// Buffer hits taken through a scan-hinted pin
    /// ([`crate::buffer::AccessHint::Scan`]); a subset of `buffer_hits`.
    pub scan_hits: AtomicU64,
    /// Buffer misses on scan-hinted pins; a subset of `buffer_misses`.
    pub scan_misses: AtomicU64,
    /// Resident pages displaced to serve a scan-hinted miss (including
    /// prefetch claims).
    pub scan_evictions: AtomicU64,
    /// Resident pages displaced to serve a normal (point-access) miss.
    pub normal_evictions: AtomicU64,
    /// Simulated elapsed disk time in nanoseconds (filled by [`crate::SimDisk`]).
    pub sim_disk_ns: AtomicU64,
    /// Seeks charged by the simulated disk (non-sequential accesses).
    pub sim_seeks: AtomicU64,
    /// EWMA (α = ⅛) of the demand-miss read service time in nanoseconds —
    /// the measured cost of one buffer-pool miss, fed to the query
    /// planner's per-page cost constant. A gauge, not a counter.
    miss_latency_ewma_ns: AtomicU64,
}

impl IoStats {
    /// Creates a zeroed, shareable counter block.
    pub fn new_shared() -> Arc<IoStats> {
        Arc::new(IoStats::default())
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.physical_reads.store(0, Ordering::Relaxed);
        self.physical_writes.store(0, Ordering::Relaxed);
        self.buffer_hits.store(0, Ordering::Relaxed);
        self.buffer_misses.store(0, Ordering::Relaxed);
        self.scan_hits.store(0, Ordering::Relaxed);
        self.scan_misses.store(0, Ordering::Relaxed);
        self.scan_evictions.store(0, Ordering::Relaxed);
        self.normal_evictions.store(0, Ordering::Relaxed);
        self.sim_disk_ns.store(0, Ordering::Relaxed);
        self.sim_seeks.store(0, Ordering::Relaxed);
        self.miss_latency_ewma_ns.store(0, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot for reporting.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            physical_reads: self.physical_reads.load(Ordering::Relaxed),
            physical_writes: self.physical_writes.load(Ordering::Relaxed),
            buffer_hits: self.buffer_hits.load(Ordering::Relaxed),
            buffer_misses: self.buffer_misses.load(Ordering::Relaxed),
            scan_hits: self.scan_hits.load(Ordering::Relaxed),
            scan_misses: self.scan_misses.load(Ordering::Relaxed),
            scan_evictions: self.scan_evictions.load(Ordering::Relaxed),
            normal_evictions: self.normal_evictions.load(Ordering::Relaxed),
            sim_disk_ns: self.sim_disk_ns.load(Ordering::Relaxed),
            sim_seeks: self.sim_seeks.load(Ordering::Relaxed),
            miss_latency_ns: self.miss_latency_ewma_ns.load(Ordering::Relaxed),
        }
    }

    /// Smoothed demand-miss read service time in nanoseconds; `0` until
    /// the first miss has been measured.
    pub fn miss_latency_ns(&self) -> u64 {
        self.miss_latency_ewma_ns.load(Ordering::Relaxed)
    }

    /// Folds one measured miss service time into the EWMA. The
    /// read-modify-write is racy by design: the value is a smoothed gauge
    /// and a lost update moves it by at most one sample's α-share.
    pub(crate) fn record_miss_latency(&self, ns: u64) {
        let old = self.miss_latency_ewma_ns.load(Ordering::Relaxed);
        let new = if old == 0 { ns } else { old - old / 8 + ns / 8 };
        self.miss_latency_ewma_ns.store(new, Ordering::Relaxed);
    }

    pub(crate) fn add_read(&self) {
        self.physical_reads.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_reads(&self, n: u64) {
        self.physical_reads.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_write(&self) {
        self.physical_writes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_hit(&self, scan: bool) {
        self.buffer_hits.fetch_add(1, Ordering::Relaxed);
        if scan {
            self.scan_hits.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn add_miss(&self, scan: bool) {
        self.buffer_misses.fetch_add(1, Ordering::Relaxed);
        if scan {
            self.scan_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn add_eviction(&self, scan: bool) {
        if scan {
            self.scan_evictions.fetch_add(1, Ordering::Relaxed);
        } else {
            self.normal_evictions.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Point-in-time copy of [`IoStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoSnapshot {
    pub physical_reads: u64,
    pub physical_writes: u64,
    pub buffer_hits: u64,
    pub buffer_misses: u64,
    pub scan_hits: u64,
    pub scan_misses: u64,
    pub scan_evictions: u64,
    pub normal_evictions: u64,
    pub sim_disk_ns: u64,
    pub sim_seeks: u64,
    /// Smoothed miss service time at snapshot instant (a gauge:
    /// [`since`](IoSnapshot::since) carries the later value through
    /// instead of subtracting).
    pub miss_latency_ns: u64,
}

impl IoSnapshot {
    /// Simulated disk time in milliseconds — the unit of the paper's plots.
    pub fn sim_disk_ms(&self) -> f64 {
        self.sim_disk_ns as f64 / 1e6
    }

    /// Difference against an earlier snapshot.
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            physical_reads: self.physical_reads - earlier.physical_reads,
            physical_writes: self.physical_writes - earlier.physical_writes,
            buffer_hits: self.buffer_hits - earlier.buffer_hits,
            buffer_misses: self.buffer_misses - earlier.buffer_misses,
            scan_hits: self.scan_hits - earlier.scan_hits,
            scan_misses: self.scan_misses - earlier.scan_misses,
            scan_evictions: self.scan_evictions - earlier.scan_evictions,
            normal_evictions: self.normal_evictions - earlier.normal_evictions,
            sim_disk_ns: self.sim_disk_ns - earlier.sim_disk_ns,
            sim_seeks: self.sim_seeks - earlier.sim_seeks,
            miss_latency_ns: self.miss_latency_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_reset() {
        let s = IoStats::new_shared();
        s.add_read();
        s.add_read();
        s.add_write();
        s.add_hit(false);
        s.add_miss(true);
        s.add_eviction(true);
        let snap = s.snapshot();
        assert_eq!(snap.physical_reads, 2);
        assert_eq!(snap.physical_writes, 1);
        assert_eq!(snap.buffer_hits, 1);
        assert_eq!(snap.buffer_misses, 1);
        assert_eq!(snap.scan_hits, 0);
        assert_eq!(snap.scan_misses, 1);
        assert_eq!(snap.scan_evictions, 1);
        assert_eq!(snap.normal_evictions, 0);
        s.reset();
        assert_eq!(s.snapshot(), IoSnapshot::default());
    }

    #[test]
    fn miss_latency_ewma_smooths() {
        let s = IoStats::new_shared();
        assert_eq!(s.miss_latency_ns(), 0);
        s.record_miss_latency(8_000);
        assert_eq!(s.miss_latency_ns(), 8_000, "first sample adopted whole");
        s.record_miss_latency(16_000);
        let after = s.miss_latency_ns();
        assert!(
            after > 8_000 && after < 16_000,
            "EWMA moves toward the sample: {after}"
        );
        // A gauge, not a counter: `since` carries the value through.
        let a = s.snapshot();
        let b = s.snapshot();
        assert_eq!(b.since(&a).miss_latency_ns, after);
    }

    #[test]
    fn since_subtracts() {
        let s = IoStats::new_shared();
        s.add_read();
        let a = s.snapshot();
        s.add_read();
        s.add_read();
        let b = s.snapshot();
        assert_eq!(b.since(&a).physical_reads, 2);
    }

    #[test]
    fn ms_conversion() {
        let s = IoStats::new_shared();
        s.sim_disk_ns.store(2_500_000, Ordering::Relaxed);
        assert!((s.snapshot().sim_disk_ms() - 2.5).abs() < 1e-9);
    }
}
