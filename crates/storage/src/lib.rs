//! # natix-storage — the "classical" physical record manager of NATIX
//!
//! This crate implements the bottom layer of the NATIX native XML repository
//! described in *Efficient Storage of XML Data* (Kanne & Moerkotte, ICDE
//! 2000), section 2.1:
//!
//! > The core of the system is a "classical" physical record manager which is
//! > responsible for disk memory management and buffering. It accesses raw
//! > disks or file system files and provides a memory space divided into
//! > segments, which are a linear collection of equal-sized pages. Pages can
//! > be as large as 32K. Each page can be a plain page (for indices and
//! > user-defined structures), or holds one or more records. Pages are
//! > organized as slotted pages, records are identified by a pair
//! > (pageid, slot) (called record ID or RID).
//!
//! Components:
//!
//! * [`rid`] — page ids, slot ids and 8-byte RIDs.
//! * [`page`] — raw page buffers and the common page header.
//! * [`slotted`] — slotted-page record organisation.
//! * [`disk`] — the [`disk::DiskBackend`] trait with in-memory and file
//!   backends.
//! * [`simdisk`] — a seek/rotation/transfer cost model replaying the paper's
//!   IBM DCAS 34330W measurement disk (see DESIGN.md, substitutions).
//! * [`buffer`] — a pin/unpin buffer manager with LRU and clock eviction.
//! * [`segment`] — segment management and page allocation.
//! * [`freespace`] — the free-space inventory used to place records.
//! * [`btree`] — a page-based B+-tree used by the NATIX index manager.
//! * [`stats`] — I/O statistics shared by the benchmark harness.

pub mod btree;
pub mod buffer;
pub mod disk;
pub mod error;
pub mod freespace;
pub mod page;
pub mod rid;
pub mod segment;
pub mod simdisk;
pub mod slotted;
pub mod stats;
pub mod wal;

pub use buffer::{AccessHint, BufferManager, EvictionPolicy, PinnedPage};
pub use disk::{DiskBackend, FaultControl, FaultDisk, FileStorage, MemStorage, ThrottledDisk};
pub use error::{StorageError, StorageResult};
pub use page::{PageBuf, PageKind, PAGE_HEADER_SIZE};
pub use rid::{PageId, Rid, SlotId, INVALID_PAGE};
pub use segment::{SegmentId, StorageManager};
pub use simdisk::{DiskProfile, SimDisk};
pub use stats::IoStats;
pub use wal::{FileLogDevice, LogDevice, MemLogDevice, StoreSnapshot, Wal, WalRecord, WalSyncMode};

/// Smallest page size supported (the paper sweeps 2K–32K).
pub const MIN_PAGE_SIZE: usize = 512;
/// Largest page size supported: "Pages can be as large as 32K". The 2-byte
/// intra-page offsets of the record format (Appendix A) also require this.
pub const MAX_PAGE_SIZE: usize = 32 * 1024;

/// Validates a page size. The paper sweeps 2K–32K including non-power-of-two
/// points (6K, 12K, ...), so we only require a sane range and 8-byte
/// alignment.
pub fn validate_page_size(page_size: usize) -> StorageResult<()> {
    if !(MIN_PAGE_SIZE..=MAX_PAGE_SIZE).contains(&page_size) || !page_size.is_multiple_of(8) {
        return Err(StorageError::BadPageSize(page_size));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_size_bounds() {
        assert!(validate_page_size(2048).is_ok());
        assert!(validate_page_size(32 * 1024).is_ok());
        assert!(validate_page_size(6 * 1024).is_ok());
        assert!(validate_page_size(256).is_err());
        assert!(validate_page_size(64 * 1024).is_err());
        assert!(validate_page_size(2056).is_ok());
        assert!(validate_page_size(2049).is_err());
    }
}
