//! Mechanical-disk cost model.
//!
//! The paper's measurements (§4.1) ran on "an IBM DCAS 34330W disk" with
//! "direct disk access and no operating system buffering", reporting
//! operation times in milliseconds. A 2026 machine cannot reproduce those
//! absolute numbers — an NVMe drive (or the OS page cache) erases exactly
//! the seek-vs-transfer trade-off the evaluation studies. [`SimDisk`]
//! therefore wraps any [`DiskBackend`] and charges a classical
//! seek + rotation + transfer model to a virtual clock:
//!
//! * non-sequential access: average seek + average rotational latency,
//! * every access: `page_size / transfer_rate`,
//! * sequential access (next physical page in the same direction): transfer
//!   only — track-to-track movement is folded into the transfer rate, as in
//!   most textbook models.
//!
//! The defaults in [`DiskProfile::dcas_34330w`] follow the published specs
//! of the measurement disk (5400 rpm Ultrastar-class SCSI drive: ~7.5 ms
//! average seek, 5.55 ms average rotational latency, ~12 MB/s sustained
//! media rate). The harness reports the virtual clock in milliseconds — the
//! same unit as the paper's figures.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::disk::DiskBackend;
use crate::error::StorageResult;
use crate::rid::PageId;
use crate::stats::IoStats;

/// Timing parameters of the modelled disk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskProfile {
    /// Average seek time charged on non-sequential access (ms).
    pub avg_seek_ms: f64,
    /// Average rotational latency charged on non-sequential access (ms).
    pub avg_rotation_ms: f64,
    /// Sustained transfer rate (bytes per second).
    pub transfer_bytes_per_s: f64,
}

impl DiskProfile {
    /// Profile of the paper's measurement disk (IBM DCAS 34330W, 5400 rpm).
    pub fn dcas_34330w() -> DiskProfile {
        DiskProfile {
            avg_seek_ms: 7.5,
            avg_rotation_ms: 5.55,
            transfer_bytes_per_s: 12.0 * 1024.0 * 1024.0,
        }
    }

    /// A much faster device, useful for sensitivity experiments.
    pub fn year_2026_ssd() -> DiskProfile {
        DiskProfile {
            avg_seek_ms: 0.02,
            avg_rotation_ms: 0.0,
            transfer_bytes_per_s: 2.0e9,
        }
    }

    /// Cost in nanoseconds of accessing one page of `page_size` bytes,
    /// `sequential` indicating the head is already positioned.
    pub fn access_ns(&self, page_size: usize, sequential: bool) -> u64 {
        let transfer_ms = page_size as f64 / self.transfer_bytes_per_s * 1e3;
        let position_ms = if sequential {
            0.0
        } else {
            self.avg_seek_ms + self.avg_rotation_ms
        };
        ((position_ms + transfer_ms) * 1e6) as u64
    }
}

/// A [`DiskBackend`] decorator charging [`DiskProfile`] costs to a shared
/// [`IoStats`] virtual clock.
pub struct SimDisk<B: DiskBackend> {
    inner: B,
    profile: DiskProfile,
    stats: Arc<IoStats>,
    /// Last physical page the head touched; `None` right after a reset.
    head: Mutex<Option<PageId>>,
}

impl<B: DiskBackend> SimDisk<B> {
    /// Wraps `inner`, accumulating costs into `stats`.
    pub fn new(inner: B, profile: DiskProfile, stats: Arc<IoStats>) -> SimDisk<B> {
        SimDisk {
            inner,
            profile,
            stats,
            head: Mutex::with_rank(&parking_lot::rank::DISK_SIM, None),
        }
    }

    /// The shared statistics block (also holds the virtual clock).
    pub fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    /// Forgets the head position, so the next access pays a full seek.
    /// The harness calls this between operations, mirroring the paper's
    /// "the buffer was cleared at the start of each operation".
    pub fn reset_head(&self) {
        *self.head.lock() = None;
    }

    /// Access to the wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    fn charge(&self, page: PageId) {
        let mut head = self.head.lock();
        let sequential = matches!(*head, Some(h) if h.wrapping_add(1) == page || h == page);
        if !sequential {
            self.stats.sim_seeks.fetch_add(1, Ordering::Relaxed);
        }
        let ns = self.profile.access_ns(self.inner.page_size(), sequential);
        self.stats.sim_disk_ns.fetch_add(ns, Ordering::Relaxed);
        *head = Some(page);
    }
}

impl<B: DiskBackend> DiskBackend for SimDisk<B> {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn read_page(&self, page: PageId, buf: &mut [u8]) -> StorageResult<()> {
        self.charge(page);
        self.inner.read_page(page, buf)
    }

    fn write_page(&self, page: PageId, buf: &[u8]) -> StorageResult<()> {
        self.charge(page);
        self.inner.write_page(page, buf)
    }

    fn page_count(&self) -> u64 {
        self.inner.page_count()
    }

    fn grow(&self, new_count: u64) -> StorageResult<()> {
        self.inner.grow(new_count)
    }

    fn sync(&self) -> StorageResult<()> {
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemStorage;

    fn sim(page_size: usize) -> SimDisk<MemStorage> {
        let stats = IoStats::new_shared();
        SimDisk::new(
            MemStorage::new(page_size).unwrap(),
            DiskProfile::dcas_34330w(),
            stats,
        )
    }

    #[test]
    fn sequential_cheaper_than_random() {
        let d = sim(2048);
        d.grow(100).unwrap();
        let buf = vec![0u8; 2048];
        for p in 0..50u32 {
            d.write_page(p, &buf).unwrap();
        }
        let seq = d.stats().snapshot();
        d.stats().reset();
        d.reset_head();
        for p in [0u32, 40, 3, 33, 7, 49, 11, 27, 2, 45] {
            let mut b = vec![0u8; 2048];
            d.read_page(p, &mut b).unwrap();
        }
        let rnd_per_page = d.stats().snapshot().sim_disk_ms() / 10.0;
        let seq_per_page = seq.sim_disk_ms() / 50.0;
        assert!(
            rnd_per_page > 5.0 * seq_per_page,
            "random ({rnd_per_page} ms) must dwarf sequential ({seq_per_page} ms)"
        );
    }

    #[test]
    fn first_access_pays_seek_and_counts() {
        let d = sim(2048);
        d.grow(2).unwrap();
        let mut b = vec![0u8; 2048];
        d.read_page(0, &mut b).unwrap();
        let s = d.stats().snapshot();
        assert_eq!(s.sim_seeks, 1);
        assert!(s.sim_disk_ms() > 13.0, "seek+rotation should dominate");
        // Repeated access to the same page: head is already there.
        d.read_page(0, &mut b).unwrap();
        assert_eq!(d.stats().snapshot().sim_seeks, 1);
    }

    #[test]
    fn larger_pages_cost_more_transfer() {
        let p = DiskProfile::dcas_34330w();
        assert!(p.access_ns(32 * 1024, true) > 10 * p.access_ns(2048, true) / 2);
        assert!(p.access_ns(2048, false) > p.access_ns(2048, true));
    }

    #[test]
    fn reset_head_forces_seek() {
        let d = sim(2048);
        d.grow(3).unwrap();
        let mut b = vec![0u8; 2048];
        d.read_page(0, &mut b).unwrap();
        d.read_page(1, &mut b).unwrap();
        assert_eq!(d.stats().snapshot().sim_seeks, 1);
        d.reset_head();
        d.read_page(2, &mut b).unwrap();
        assert_eq!(d.stats().snapshot().sim_seeks, 2);
    }
}
