//! Slotted-page record organisation.
//!
//! §2.1: "Pages are organized as slotted pages, records are identified by a
//! pair (pageid, slot)". The slot directory grows downward from the end of
//! the page, record data grows upward from the header. Deleting or moving a
//! record never disturbs other slots, so RIDs stay stable; compaction moves
//! record bytes but keeps slot numbers.
//!
//! ```text
//! [ header 16B | record data ... -> free ... <- slot dir ]
//! ```
//!
//! Each slot entry is 4 bytes: `offset: u16`, `len: u16`. `offset == 0`
//! marks a free (reusable) slot — record data can never start at offset 0
//! because the header occupies the first 16 bytes.

use crate::error::{StorageError, StorageResult};
use crate::page::{PageBuf, PageKind, PAGE_HEADER_SIZE};
use crate::rid::SlotId;

/// Bytes used by one slot directory entry.
pub const SLOT_ENTRY_SIZE: usize = 4;

/// Maximum payload a single record can occupy on an otherwise empty page.
pub fn max_record_payload(page_size: usize) -> usize {
    page_size - PAGE_HEADER_SIZE - SLOT_ENTRY_SIZE
}

/// A mutable view of a slotted page.
///
/// All mutation of slotted pages goes through this wrapper so the free-space
/// bookkeeping (`free_start`, `free_total`) stays consistent.
pub struct SlottedPage<'a> {
    page: &'a mut PageBuf,
}

impl<'a> SlottedPage<'a> {
    /// Formats `page` as an empty slotted page and returns the view.
    pub fn format(page: &'a mut PageBuf) -> SlottedPage<'a> {
        page.format(PageKind::Slotted);
        page.set_free_start(PAGE_HEADER_SIZE as u16);
        let free = page.len() - PAGE_HEADER_SIZE;
        page.set_free_total(free as u16);
        SlottedPage { page }
    }

    /// Wraps an existing slotted page, validating the kind byte.
    pub fn open(page: &'a mut PageBuf) -> StorageResult<SlottedPage<'a>> {
        match page.kind()? {
            PageKind::Slotted => Ok(SlottedPage { page }),
            k => Err(StorageError::Corrupt(format!(
                "expected slotted page, found {k:?}"
            ))),
        }
    }

    fn page_size(&self) -> usize {
        self.page.len()
    }

    fn slot_pos(&self, slot: SlotId) -> usize {
        self.page_size() - SLOT_ENTRY_SIZE * (slot as usize + 1)
    }

    fn slot_entry(&self, slot: SlotId) -> (u16, u16) {
        let pos = self.slot_pos(slot);
        (self.page.read_u16(pos), self.page.read_u16(pos + 2))
    }

    fn set_slot_entry(&mut self, slot: SlotId, offset: u16, len: u16) {
        let pos = self.slot_pos(slot);
        self.page.write_u16(pos, offset);
        self.page.write_u16(pos + 2, len);
    }

    /// Number of directory entries (live + free).
    pub fn slot_count(&self) -> u16 {
        self.page.slot_count()
    }

    /// True if `slot` exists and holds a record.
    pub fn is_live(&self, slot: SlotId) -> bool {
        slot < self.slot_count() && self.slot_entry(slot).0 != 0
    }

    /// Free bytes available after compaction (a new record additionally
    /// needs a slot entry unless a free slot exists).
    pub fn free_total(&self) -> usize {
        self.page.free_total() as usize
    }

    /// Free bytes available for a *new* record, accounting for the slot
    /// entry it would consume.
    pub fn free_for_new_record(&self) -> usize {
        let free = self.free_total();
        if self.first_free_slot().is_some() {
            free
        } else {
            free.saturating_sub(SLOT_ENTRY_SIZE)
        }
    }

    fn first_free_slot(&self) -> Option<SlotId> {
        (0..self.slot_count()).find(|&s| self.slot_entry(s).0 == 0)
    }

    /// Returns the payload of `slot`.
    pub fn get(&self, slot: SlotId) -> Option<&[u8]> {
        if !self.is_live(slot) {
            return None;
        }
        let (off, len) = self.slot_entry(slot);
        Some(&self.page.bytes()[off as usize..off as usize + len as usize])
    }

    /// Returns the payload of `slot` mutably (same-length updates only).
    pub fn get_mut(&mut self, slot: SlotId) -> Option<&mut [u8]> {
        if !self.is_live(slot) {
            return None;
        }
        let (off, len) = self.slot_entry(slot);
        Some(&mut self.page.bytes_mut()[off as usize..off as usize + len as usize])
    }

    /// Iterates over live slot ids.
    pub fn live_slots(&self) -> impl Iterator<Item = SlotId> + '_ {
        (0..self.slot_count()).filter(move |&s| self.is_live(s))
    }

    /// Inserts a record, reusing a free slot if one exists.
    pub fn insert(&mut self, bytes: &[u8]) -> StorageResult<SlotId> {
        let slot = match self.first_free_slot() {
            Some(s) => s,
            None => self.slot_count(),
        };
        self.insert_at(slot, bytes)?;
        Ok(slot)
    }

    /// Inserts a record at a specific slot id (used for well-known slots
    /// such as the node-type table at slot 0). The slot must be free; slots
    /// between the current count and `slot` are created as free slots.
    pub fn insert_at(&mut self, slot: SlotId, bytes: &[u8]) -> StorageResult<()> {
        if self.is_live(slot) {
            return Err(StorageError::SlotOccupied(slot));
        }
        let new_slots = (slot as usize + 1).saturating_sub(self.slot_count() as usize);
        let needed = bytes.len() + new_slots * SLOT_ENTRY_SIZE;
        if needed > self.free_total() {
            return Err(StorageError::PageFull {
                needed,
                free: self.free_total(),
            });
        }
        // Growing the directory moves the slot-area boundary down; any
        // record data reaching into the new directory bytes must be
        // compacted away first or the new entries would overwrite it.
        if new_slots > 0 {
            let new_slot_area = self.page_size() - SLOT_ENTRY_SIZE * (slot as usize + 1);
            if self.page.free_start() as usize > new_slot_area {
                self.compact();
            }
            debug_assert!(self.page.free_start() as usize <= new_slot_area);
            let old = self.slot_count();
            self.page.set_slot_count(slot + 1);
            for s in old..=slot {
                self.set_slot_entry(s, 0, 0);
            }
        }
        let slot_area = self.page_size() - SLOT_ENTRY_SIZE * self.slot_count() as usize;
        if self.page.free_start() as usize + bytes.len() > slot_area {
            self.compact();
        }
        let off = self.page.free_start() as usize;
        debug_assert!(off + bytes.len() <= slot_area);
        self.page.bytes_mut()[off..off + bytes.len()].copy_from_slice(bytes);
        self.set_slot_entry(slot, off as u16, bytes.len() as u16);
        self.page.set_free_start((off + bytes.len()) as u16);
        self.page
            .set_free_total((self.free_total() - needed) as u16);
        Ok(())
    }

    /// Deletes a record, leaving the slot reusable. Trailing free slots are
    /// trimmed so their directory bytes become ordinary free space.
    pub fn delete(&mut self, slot: SlotId) -> StorageResult<()> {
        if !self.is_live(slot) {
            return Err(StorageError::RecordNotFound(crate::rid::Rid::new(0, slot)));
        }
        let (off, len) = self.slot_entry(slot);
        self.set_slot_entry(slot, 0, 0);
        let mut reclaimed = len as usize;
        // If this was the topmost record, the hole merges into contiguous
        // free space directly.
        if off as usize + len as usize == self.page.free_start() as usize {
            self.page.set_free_start(off);
        }
        // Trim trailing free slots.
        let mut count = self.slot_count();
        while count > 0 && self.slot_entry(count - 1).0 == 0 {
            count -= 1;
            reclaimed += SLOT_ENTRY_SIZE;
        }
        self.page.set_slot_count(count);
        self.page
            .set_free_total((self.free_total() + reclaimed) as u16);
        Ok(())
    }

    /// Replaces the payload of `slot`, growing or shrinking it.
    pub fn update(&mut self, slot: SlotId, bytes: &[u8]) -> StorageResult<()> {
        if !self.is_live(slot) {
            return Err(StorageError::RecordNotFound(crate::rid::Rid::new(0, slot)));
        }
        let (off, len) = self.slot_entry(slot);
        let (off, len) = (off as usize, len as usize);
        if bytes.len() <= len {
            self.page.bytes_mut()[off..off + bytes.len()].copy_from_slice(bytes);
            self.set_slot_entry(slot, off as u16, bytes.len() as u16);
            if off + len == self.page.free_start() as usize {
                self.page.set_free_start((off + bytes.len()) as u16);
            }
            self.page
                .set_free_total((self.free_total() + len - bytes.len()) as u16);
            return Ok(());
        }
        let grow = bytes.len() - len;
        if grow > self.free_total() {
            return Err(StorageError::PageFull {
                needed: grow,
                free: self.free_total(),
            });
        }
        // Relocate: free the old image, then place the new one, compacting
        // if the contiguous region is fragmented.
        self.set_slot_entry(slot, 0, 0);
        if off + len == self.page.free_start() as usize {
            self.page.set_free_start(off as u16);
        }
        let slot_area = self.page_size() - SLOT_ENTRY_SIZE * self.slot_count() as usize;
        if self.page.free_start() as usize + bytes.len() > slot_area {
            self.compact();
        }
        let new_off = self.page.free_start() as usize;
        debug_assert!(new_off + bytes.len() <= slot_area);
        self.page.bytes_mut()[new_off..new_off + bytes.len()].copy_from_slice(bytes);
        self.set_slot_entry(slot, new_off as u16, bytes.len() as u16);
        self.page.set_free_start((new_off + bytes.len()) as u16);
        self.page.set_free_total((self.free_total() - grow) as u16);
        Ok(())
    }

    /// Squeezes out holes left by deletions and relocations. Slot ids are
    /// preserved; only record byte positions change (record images must
    /// therefore be location-independent, which Appendix A guarantees).
    pub fn compact(&mut self) {
        let mut live: Vec<(SlotId, u16, u16)> = (0..self.slot_count())
            .filter_map(|s| {
                let (off, len) = self.slot_entry(s);
                (off != 0).then_some((s, off, len))
            })
            .collect();
        live.sort_by_key(|&(_, off, _)| off);
        let mut cursor = PAGE_HEADER_SIZE;
        for (slot, off, len) in live {
            let (off, len_us) = (off as usize, len as usize);
            if off != cursor {
                self.page.bytes_mut().copy_within(off..off + len_us, cursor);
                self.set_slot_entry(slot, cursor as u16, len);
            }
            cursor += len_us;
        }
        self.page.set_free_start(cursor as u16);
    }

    /// Consistency check used by tests: recomputes free space from the slot
    /// directory, compares with the header fields, and detects overlapping
    /// records.
    pub fn check_invariants(&self) -> StorageResult<()> {
        check_invariants_impl(
            self.page_size(),
            self.slot_count(),
            self.page.free_start(),
            self.page.free_total(),
            |s| self.slot_entry(s),
        )
    }
}

fn check_invariants_impl(
    page_size: usize,
    slot_count: u16,
    free_start: u16,
    free_total: u16,
    slot_entry: impl Fn(SlotId) -> (u16, u16),
) -> StorageResult<()> {
    let mut used = 0usize;
    let mut live: Vec<(u16, u16, SlotId)> = Vec::new();
    for s in 0..slot_count {
        let (off, len) = slot_entry(s);
        if off == 0 {
            continue;
        }
        // Zero-length records occupy no bytes; their recorded offset may
        // legitimately sit above free_start after neighbours shrank.
        if len == 0 {
            continue;
        }
        let end = off as usize + len as usize;
        if (off as usize) < PAGE_HEADER_SIZE || end > free_start as usize {
            return Err(StorageError::Corrupt(format!(
                "slot {s} [{off},{end}) outside data area (free_start {free_start})"
            )));
        }
        used += len as usize;
        live.push((off, len, s));
    }
    live.sort_unstable();
    for w in live.windows(2) {
        let (off_a, len_a, slot_a) = w[0];
        let (off_b, _, slot_b) = w[1];
        if off_a as usize + len_a as usize > off_b as usize {
            return Err(StorageError::Corrupt(format!(
                "slots {slot_a} and {slot_b} overlap: [{off_a}+{len_a}) vs {off_b}"
            )));
        }
    }
    let expect = page_size - PAGE_HEADER_SIZE - SLOT_ENTRY_SIZE * slot_count as usize - used;
    if expect != free_total as usize {
        return Err(StorageError::Corrupt(format!(
            "free_total {free_total} != recomputed {expect}"
        )));
    }
    Ok(())
}

/// Read-only companion of [`SlottedPage`] for shared page access.
pub struct SlottedPageRef<'a> {
    page: &'a PageBuf,
}

impl<'a> SlottedPageRef<'a> {
    /// Wraps an existing slotted page, validating the kind byte.
    pub fn open(page: &'a PageBuf) -> StorageResult<SlottedPageRef<'a>> {
        match page.kind()? {
            PageKind::Slotted => Ok(SlottedPageRef { page }),
            k => Err(StorageError::Corrupt(format!(
                "expected slotted page, found {k:?}"
            ))),
        }
    }

    fn slot_entry(&self, slot: SlotId) -> (u16, u16) {
        let pos = self.page.len() - SLOT_ENTRY_SIZE * (slot as usize + 1);
        (self.page.read_u16(pos), self.page.read_u16(pos + 2))
    }

    /// Number of directory entries (live + free).
    pub fn slot_count(&self) -> u16 {
        self.page.slot_count()
    }

    /// True if `slot` exists and holds a record.
    pub fn is_live(&self, slot: SlotId) -> bool {
        slot < self.slot_count() && self.slot_entry(slot).0 != 0
    }

    /// Returns the payload of `slot`.
    pub fn get(&self, slot: SlotId) -> Option<&'a [u8]> {
        if !self.is_live(slot) {
            return None;
        }
        let (off, len) = self.slot_entry(slot);
        Some(&self.page.bytes()[off as usize..off as usize + len as usize])
    }

    /// Free bytes available after compaction.
    pub fn free_total(&self) -> usize {
        self.page.free_total() as usize
    }

    /// Iterates over live slot ids.
    pub fn live_slots(&self) -> impl Iterator<Item = SlotId> + '_ {
        (0..self.slot_count()).filter(move |&s| self.is_live(s))
    }

    /// Read-only variant of [`SlottedPage::check_invariants`].
    pub fn check_invariants(&self) -> StorageResult<()> {
        check_invariants_impl(
            self.page.len(),
            self.slot_count(),
            self.page.free_start(),
            self.page.free_total(),
            |s| self.slot_entry(s),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh(page_size: usize) -> PageBuf {
        let mut p = PageBuf::new(page_size);
        SlottedPage::format(&mut p);
        p
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut p = fresh(2048);
        let mut sp = SlottedPage::open(&mut p).unwrap();
        let a = sp.insert(b"hello").unwrap();
        let b = sp.insert(b"world!").unwrap();
        assert_ne!(a, b);
        assert_eq!(sp.get(a).unwrap(), b"hello");
        assert_eq!(sp.get(b).unwrap(), b"world!");
        sp.check_invariants().unwrap();
    }

    #[test]
    fn delete_reuses_slot() {
        let mut p = fresh(2048);
        let mut sp = SlottedPage::open(&mut p).unwrap();
        let a = sp.insert(b"aaaa").unwrap();
        let _b = sp.insert(b"bbbb").unwrap();
        sp.delete(a).unwrap();
        assert!(sp.get(a).is_none());
        let c = sp.insert(b"cccc").unwrap();
        assert_eq!(c, a, "freed slot should be reused");
        sp.check_invariants().unwrap();
    }

    #[test]
    fn trailing_slot_trim() {
        let mut p = fresh(2048);
        let mut sp = SlottedPage::open(&mut p).unwrap();
        let a = sp.insert(b"a").unwrap();
        let b = sp.insert(b"b").unwrap();
        let before = sp.free_total();
        sp.delete(b).unwrap();
        sp.delete(a).unwrap();
        assert_eq!(sp.slot_count(), 0);
        assert_eq!(sp.free_total(), before + 2 + 2 * SLOT_ENTRY_SIZE);
        sp.check_invariants().unwrap();
    }

    #[test]
    fn update_in_place_and_grow() {
        let mut p = fresh(2048);
        let mut sp = SlottedPage::open(&mut p).unwrap();
        let a = sp.insert(b"0123456789").unwrap();
        sp.update(a, b"xy").unwrap();
        assert_eq!(sp.get(a).unwrap(), b"xy");
        sp.update(a, b"a longer payload than before").unwrap();
        assert_eq!(sp.get(a).unwrap(), b"a longer payload than before");
        sp.check_invariants().unwrap();
    }

    #[test]
    fn fills_to_capacity_exactly() {
        let size = 512;
        let mut p = fresh(size);
        let mut sp = SlottedPage::open(&mut p).unwrap();
        let payload = vec![7u8; max_record_payload(size)];
        let s = sp.insert(&payload).unwrap();
        assert_eq!(sp.free_total(), 0);
        assert!(sp.insert(b"x").is_err());
        assert_eq!(sp.get(s).unwrap().len(), payload.len());
        sp.check_invariants().unwrap();
    }

    #[test]
    fn compaction_recovers_fragmented_space() {
        let mut p = fresh(512);
        let mut sp = SlottedPage::open(&mut p).unwrap();
        let a = sp.insert(&[1u8; 150]).unwrap();
        let b = sp.insert(&[2u8; 150]).unwrap();
        let c = sp.insert(&[3u8; 150]).unwrap();
        sp.delete(b).unwrap();
        // The hole in the middle forces a compaction on the next insert.
        let d = sp.insert(&[4u8; 160]).unwrap();
        assert_eq!(sp.get(a).unwrap(), &[1u8; 150][..]);
        assert_eq!(sp.get(c).unwrap(), &[3u8; 150][..]);
        assert_eq!(sp.get(d).unwrap(), &[4u8; 160][..]);
        sp.check_invariants().unwrap();
    }

    #[test]
    fn insert_at_well_known_slot() {
        let mut p = fresh(1024);
        let mut sp = SlottedPage::open(&mut p).unwrap();
        sp.insert_at(0, b"type-table").unwrap();
        assert!(sp.insert_at(0, b"again").is_err());
        let r = sp.insert(b"record").unwrap();
        assert_eq!(r, 1);
        assert_eq!(sp.get(0).unwrap(), b"type-table");
        sp.check_invariants().unwrap();
    }

    #[test]
    fn insert_at_creates_intermediate_free_slots() {
        let mut p = fresh(1024);
        let mut sp = SlottedPage::open(&mut p).unwrap();
        sp.insert_at(3, b"late").unwrap();
        assert_eq!(sp.slot_count(), 4);
        assert!(!sp.is_live(0));
        let s = sp.insert(b"fills-gap").unwrap();
        assert_eq!(s, 0);
        sp.check_invariants().unwrap();
    }

    #[test]
    fn zero_length_records() {
        let mut p = fresh(512);
        let mut sp = SlottedPage::open(&mut p).unwrap();
        let a = sp.insert(b"").unwrap();
        assert_eq!(sp.get(a).unwrap(), b"");
        sp.delete(a).unwrap();
        sp.check_invariants().unwrap();
    }

    #[test]
    fn directory_growth_compacts_boundary_records() {
        // Regression: a record ending exactly at the slot-area boundary
        // must be moved before the directory grows over its tail bytes.
        let size = 256;
        let mut p = fresh(size);
        let mut sp = SlottedPage::open(&mut p).unwrap();
        // One slot so far; fill the data area right up to the boundary.
        let payload: Vec<u8> = (0..max_record_payload(size) - 40)
            .map(|i| i as u8)
            .collect();
        let a = sp.insert(&payload).unwrap();
        let marker = vec![0xEE; 36]; // ends exactly at size - 2*SLOT_ENTRY
        let b = sp.insert(&marker).unwrap();
        // Inserting a third record grows the directory into what was the
        // end of `marker` before the fix.
        let c = sp.insert(&[0x11; 20]).unwrap_err(); // no free bytes left
        assert!(matches!(c, StorageError::PageFull { .. }));
        sp.delete(a).unwrap();
        let c = sp.insert(&[0x11; 20]).unwrap();
        assert_eq!(sp.get(b).unwrap(), &marker[..], "marker tail must survive");
        assert_eq!(sp.get(c).unwrap(), &[0x11; 20][..]);
        sp.check_invariants().unwrap();
    }

    #[test]
    fn read_only_view_matches() {
        let mut p = fresh(1024);
        let a = {
            let mut sp = SlottedPage::open(&mut p).unwrap();
            sp.insert(b"shared").unwrap()
        };
        let view = SlottedPageRef::open(&p).unwrap();
        assert_eq!(view.get(a).unwrap(), b"shared");
        assert_eq!(view.live_slots().count(), 1);
    }
}
