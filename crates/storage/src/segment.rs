//! Segment management and the record-manager facade.
//!
//! §2.1: the record manager "provides a memory space divided into segments,
//! which are a linear collection of equal-sized pages". A
//! [`StorageManager`] owns the repository's page space:
//!
//! * **page 0** is the header page: magic, page size, allocation state, a
//!   64-byte user-root area for the upper layers, and the segment
//!   directory;
//! * freed pages form an intrusive free list chained through their header's
//!   `next_page` field;
//! * each segment tracks its pages and their free space in an in-memory
//!   [`FreeSpaceInventory`] persisted to a chain of space-map pages on
//!   [`checkpoint`](StorageManager::checkpoint).
//!
//! On top of that it offers RID-granular record operations used by the tree
//! storage manager and the catalog. The paper's system has no recovery
//! component — durability there is via explicit checkpointing. Here, when a
//! [`Wal`] is attached via [`StorageManager::attach_wal`], allocation-state
//! transitions (page alloc/free, segment creation) are additionally logged
//! so recovery can rebuild the allocator from a checkpoint snapshot plus
//! the log suffix: after a crash the header page, free-list chain and space
//! maps on disk are all untrustworthy (they are ordinary unlogged pages).

use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

use crate::buffer::{AccessHint, BufferManager, PinnedPage};
use crate::error::{StorageError, StorageResult};
use crate::freespace::FreeSpaceInventory;
use crate::page::{PageKind, PAGE_HEADER_SIZE};
use crate::rid::{PageId, Rid, INVALID_PAGE};
use crate::slotted::{max_record_payload, SlottedPage, SlottedPageRef};
use crate::wal::{SegmentSnapshot, StoreSnapshot, Wal, WalRecord, NO_ALLOC_SEGMENT};

/// Identifies a segment within a repository.
pub type SegmentId = u16;

const MAGIC: &[u8; 8] = b"NATIXSTO";
/// On-disk format version. Version 2 adds proxy label digests: child-record
/// proxies may carry the child root's label in their type-table entry.
/// Version-1 stores (whose proxies all decode as `LABEL_NONE`, the
/// "must read" digest sentinel) stay readable — see `MIN_VERSION`.
const VERSION: u32 = 2;
/// Oldest on-disk format this build still opens.
const MIN_VERSION: u32 = 1;

// Header page layout (after the common 16-byte page header).
const OFF_MAGIC: usize = 16;
const OFF_VERSION: usize = 24;
const OFF_PAGE_SIZE: usize = 28;
const OFF_NEXT_UNALLOCATED: usize = 32;
const OFF_FREE_LIST: usize = 36;
const OFF_SEGMENT_COUNT: usize = 40;
const OFF_USER_ROOT: usize = 48;
/// Bytes in the user-root area (catalog bootstrap data for upper layers).
pub const USER_ROOT_LEN: usize = 64;
const OFF_SEGDIR: usize = OFF_USER_ROOT + USER_ROOT_LEN;
const SEGDIR_ENTRY: usize = 20; // u32 spacemap head + u16 name len + 14-byte name
const MAX_SEGMENT_NAME: usize = 14;

// Space-map page payload: entry = u32 page + u16 free bytes.
const SPACEMAP_ENTRY: usize = 6;

struct SegmentState {
    name: String,
    fsi: FreeSpaceInventory,
    /// Head of the on-disk space-map chain (rewritten on checkpoint).
    spacemap_head: PageId,
}

struct SmState {
    next_unallocated: PageId,
    free_list_head: PageId,
    segments: Vec<SegmentState>,
}

/// Placement preference for new records (§4.2's "same page if possible").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementHint {
    /// No preference: best fit anywhere in the segment.
    #[default]
    Anywhere,
    /// Prefer this page (typically the parent record's page).
    NearPage(PageId),
}

impl PlacementHint {
    fn page(self) -> Option<PageId> {
        match self {
            PlacementHint::Anywhere => None,
            PlacementHint::NearPage(p) => Some(p),
        }
    }
}

/// The record-manager facade: segments, page allocation, RID-level record
/// operations and the free-space inventory.
pub struct StorageManager {
    buffer: Arc<BufferManager>,
    state: Mutex<SmState>,
    /// Attached write-ahead log; allocation transitions are logged when set.
    wal: OnceLock<Arc<Wal>>,
}

impl StorageManager {
    /// Formats a brand-new repository on the buffer's backend.
    pub fn create(buffer: Arc<BufferManager>) -> StorageResult<StorageManager> {
        buffer.backend().grow(1)?;
        {
            let hdr = buffer.pin_new(0)?;
            let mut page = hdr.write();
            page.format(PageKind::Header);
            page.bytes_mut()[OFF_MAGIC..OFF_MAGIC + 8].copy_from_slice(MAGIC);
            page.write_u32(OFF_VERSION, VERSION);
            page.write_u32(OFF_PAGE_SIZE, buffer.page_size() as u32);
            page.write_u32(OFF_NEXT_UNALLOCATED, 1);
            page.write_u32(OFF_FREE_LIST, INVALID_PAGE);
            page.write_u16(OFF_SEGMENT_COUNT, 0);
        }
        Ok(StorageManager {
            buffer,
            state: Mutex::with_rank(
                &parking_lot::rank::ALLOCATOR,
                SmState {
                    next_unallocated: 1,
                    free_list_head: INVALID_PAGE,
                    segments: Vec::new(),
                },
            ),
            wal: OnceLock::new(),
        })
    }

    /// Opens an existing repository, loading the segment directory and
    /// space maps.
    pub fn open(buffer: Arc<BufferManager>) -> StorageResult<StorageManager> {
        let (next_unallocated, free_list_head, seg_heads) = {
            let hdr = buffer.pin(0)?;
            let page = hdr.read();
            if page.kind()? != PageKind::Header || &page.bytes()[OFF_MAGIC..OFF_MAGIC + 8] != MAGIC
            {
                return Err(StorageError::Corrupt("missing NATIX header".into()));
            }
            let version = page.read_u32(OFF_VERSION);
            if !(MIN_VERSION..=VERSION).contains(&version) {
                return Err(StorageError::Corrupt(format!(
                    "unsupported format version {version} (supported: \
                     {MIN_VERSION}..={VERSION})"
                )));
            }
            let stored_ps = page.read_u32(OFF_PAGE_SIZE) as usize;
            if stored_ps != buffer.page_size() {
                return Err(StorageError::Corrupt(format!(
                    "store has page size {stored_ps}, opened with {}",
                    buffer.page_size()
                )));
            }
            let nseg = page.read_u16(OFF_SEGMENT_COUNT) as usize;
            let mut heads = Vec::with_capacity(nseg);
            for i in 0..nseg {
                let at = OFF_SEGDIR + i * SEGDIR_ENTRY;
                let head = page.read_u32(at);
                let name_len = page.read_u16(at + 4) as usize;
                let name =
                    String::from_utf8_lossy(&page.bytes()[at + 6..at + 6 + name_len]).into_owned();
                heads.push((head, name));
            }
            (
                page.read_u32(OFF_NEXT_UNALLOCATED),
                page.read_u32(OFF_FREE_LIST),
                heads,
            )
        };
        let mut segments = Vec::with_capacity(seg_heads.len());
        for (head, name) in seg_heads {
            let mut fsi = FreeSpaceInventory::new();
            let mut cur = head;
            while cur != INVALID_PAGE {
                let pin = buffer.pin(cur)?;
                let page = pin.read();
                if page.kind()? != PageKind::SpaceMap {
                    return Err(StorageError::Corrupt(format!(
                        "segment '{name}': page {cur} is not a space map"
                    )));
                }
                let n = page.slot_count() as usize;
                for e in 0..n {
                    let at = PAGE_HEADER_SIZE + e * SPACEMAP_ENTRY;
                    fsi.set(page.read_u32(at), page.read_u16(at + 4));
                }
                cur = page.next_page();
            }
            segments.push(SegmentState {
                name,
                fsi,
                spacemap_head: head,
            });
        }
        Ok(StorageManager {
            buffer,
            state: Mutex::with_rank(
                &parking_lot::rank::ALLOCATOR,
                SmState {
                    next_unallocated,
                    free_list_head,
                    segments,
                },
            ),
            wal: OnceLock::new(),
        })
    }

    /// Attaches the write-ahead log. From now on page allocation, page
    /// frees and segment creation append log records (unless the calling
    /// thread suppresses logging, e.g. during checkpoint or recovery).
    pub fn attach_wal(&self, wal: Arc<Wal>) {
        let _ = self.wal.set(wal);
    }

    fn wal_append(&self, rec: &WalRecord) {
        if let Some(wal) = self.wal.get() {
            wal.append(rec);
        }
    }

    /// The shared buffer manager.
    pub fn buffer(&self) -> &Arc<BufferManager> {
        &self.buffer
    }

    /// Page size of this repository.
    pub fn page_size(&self) -> usize {
        self.buffer.page_size()
    }

    /// Largest record payload a page can hold (one record per page, before
    /// any client-level reserves such as the node-type table).
    pub fn max_record_size(&self) -> usize {
        max_record_payload(self.page_size())
    }

    fn persist_alloc_state(&self, st: &SmState) -> StorageResult<()> {
        let hdr = self.buffer.pin(0)?;
        let mut page = hdr.write();
        page.write_u32(OFF_NEXT_UNALLOCATED, st.next_unallocated);
        page.write_u32(OFF_FREE_LIST, st.free_list_head);
        Ok(())
    }

    fn persist_segdir(&self, st: &SmState) -> StorageResult<()> {
        let hdr = self.buffer.pin(0)?;
        let mut page = hdr.write();
        page.write_u16(OFF_SEGMENT_COUNT, st.segments.len() as u16);
        for (i, seg) in st.segments.iter().enumerate() {
            let at = OFF_SEGDIR + i * SEGDIR_ENTRY;
            page.write_u32(at, seg.spacemap_head);
            let name = seg.name.as_bytes();
            page.write_u16(at + 4, name.len() as u16);
            page.bytes_mut()[at + 6..at + 6 + name.len()].copy_from_slice(name);
        }
        Ok(())
    }

    /// Creates a new segment; fails if the name is taken or too long.
    pub fn create_segment(&self, name: &str) -> StorageResult<SegmentId> {
        if name.len() > MAX_SEGMENT_NAME {
            return Err(StorageError::Corrupt(format!(
                "segment name '{name}' longer than {MAX_SEGMENT_NAME} bytes"
            )));
        }
        let mut st = self.state.lock();
        if st.segments.iter().any(|s| s.name == name) {
            return Err(StorageError::Corrupt(format!(
                "segment '{name}' already exists"
            )));
        }
        let max = (self.page_size() - OFF_SEGDIR) / SEGDIR_ENTRY;
        if st.segments.len() >= max {
            return Err(StorageError::Corrupt("segment directory full".into()));
        }
        st.segments.push(SegmentState {
            name: name.to_string(),
            fsi: FreeSpaceInventory::new(),
            spacemap_head: INVALID_PAGE,
        });
        // Logged under the state lock so the record order in the log
        // matches the positional segment-id order recovery replays.
        self.wal_append(&WalRecord::SegCreate {
            name: name.to_string(),
        });
        self.persist_segdir(&st)?;
        Ok((st.segments.len() - 1) as SegmentId)
    }

    /// Looks up a segment id by name.
    pub fn segment_by_name(&self, name: &str) -> Option<SegmentId> {
        self.state
            .lock()
            .segments
            .iter()
            .position(|s| s.name == name)
            .map(|i| i as SegmentId)
    }

    /// Names of all segments, in id order.
    pub fn segment_names(&self) -> Vec<String> {
        self.state
            .lock()
            .segments
            .iter()
            .map(|s| s.name.clone())
            .collect()
    }

    /// `fsi_segment` is the inventory the caller will register the page
    /// in ([`NO_ALLOC_SEGMENT`] for space-map chains) — recorded in the
    /// log so recovery can re-adopt surviving allocations.
    fn alloc_raw(&self, st: &mut SmState, fsi_segment: SegmentId) -> StorageResult<PageId> {
        if st.free_list_head != INVALID_PAGE {
            let page = st.free_list_head;
            let pin = self.buffer.pin(page)?;
            st.free_list_head = pin.read().next_page();
            drop(pin);
            self.wal_append(&WalRecord::Alloc {
                page,
                segment: fsi_segment,
            });
            self.persist_alloc_state(st)?;
            return Ok(page);
        }
        let page = st.next_unallocated;
        st.next_unallocated += 1;
        self.buffer.backend().grow(st.next_unallocated as u64)?;
        self.wal_append(&WalRecord::Alloc {
            page,
            segment: fsi_segment,
        });
        self.persist_alloc_state(st)?;
        Ok(page)
    }

    /// Allocates and formats a page for `segment`. Slotted pages enter the
    /// segment's free-space inventory immediately.
    pub fn allocate_page(&self, segment: SegmentId, kind: PageKind) -> StorageResult<PageId> {
        self.allocate_page_hinted(segment, kind, AccessHint::Normal)
    }

    /// [`allocate_page`](Self::allocate_page) under a buffer-replacement
    /// hint: bulkload append streams pass [`AccessHint::Scan`] so the
    /// pages they fill once enter the pool at cold priority.
    pub fn allocate_page_hinted(
        &self,
        segment: SegmentId,
        kind: PageKind,
        hint: AccessHint,
    ) -> StorageResult<PageId> {
        let page = {
            let mut st = self.state.lock();
            if segment as usize >= st.segments.len() {
                return Err(StorageError::NoSuchSegment(segment));
            }
            self.alloc_raw(&mut st, segment)?
        };
        // Format outside the allocator lock: pinning the fresh page can
        // evict a dirty frame (a disk write), and holding the state mutex
        // across that would serialize every concurrent bulkload behind one
        // writer's I/O stall. The page id is not published anywhere until
        // the FSI entry below, so no other thread can reach it yet.
        let free = {
            let pin = self.buffer.pin_new_hinted(page, hint)?;
            let mut buf = pin.write();
            if kind == PageKind::Slotted {
                SlottedPage::format(&mut buf);
            } else {
                buf.format(kind);
            }
            buf.free_total()
        };
        let mut st = self.state.lock();
        st.segments[segment as usize].fsi.set(page, free);
        Ok(page)
    }

    /// Returns `page` to the global free pool and forgets its FSI entry.
    pub fn free_page(&self, segment: SegmentId, page: PageId) -> StorageResult<()> {
        let mut st = self.state.lock();
        if segment as usize >= st.segments.len() {
            return Err(StorageError::NoSuchSegment(segment));
        }
        st.segments[segment as usize].fsi.remove(page);
        self.buffer.discard(page)?;
        let pin = self.buffer.pin_new(page)?;
        {
            let mut buf = pin.write();
            buf.format(PageKind::Free);
            buf.set_next_page(st.free_list_head);
        }
        drop(pin);
        st.free_list_head = page;
        self.wal_append(&WalRecord::Free { page });
        self.persist_alloc_state(&st)
    }

    /// Pins a page for direct access (tree storage manager, B+-tree).
    pub fn pin(&self, page: PageId) -> StorageResult<PinnedPage> {
        self.buffer.pin(page)
    }

    /// Pins a page for direct access under a replacement hint — scans and
    /// bulkload append streams pass [`AccessHint::Scan`] so their one-shot
    /// pages do not displace the point-access working set.
    pub fn pin_hinted(&self, page: PageId, hint: AccessHint) -> StorageResult<PinnedPage> {
        self.buffer.pin_hinted(page, hint)
    }

    /// Best-effort read-ahead: see [`BufferManager::prefetch`]. Returns
    /// the number of pages actually read.
    pub fn prefetch(&self, pages: &[PageId]) -> StorageResult<usize> {
        self.buffer.prefetch(pages)
    }

    /// Updates the cached free-space value for a slotted page. `segment`
    /// is the caller's working segment; if another segment's inventory
    /// already tracks the page, that entry is updated instead — record
    /// RIDs are repository-global, so a tree store routinely touches pages
    /// that a concurrent-ingestion segment allocated (e.g. deleting a
    /// document that was bulkloaded into an `ingestN` segment), and a
    /// blind insert here would leave the owning inventory stale while
    /// double-listing the page under the caller's segment.
    pub fn note_free_space(&self, segment: SegmentId, page: PageId, free: usize) {
        let free = free.min(u16::MAX as usize) as u16;
        let mut st = self.state.lock();
        if let Some(seg) = st.segments.get_mut(segment as usize) {
            if seg.fsi.get(page).is_some() {
                seg.fsi.set(page, free);
                return;
            }
        }
        if let Some(owner) = st
            .segments
            .iter_mut()
            .find(|seg| seg.fsi.get(page).is_some())
        {
            owner.fsi.set(page, free);
            return;
        }
        if let Some(seg) = st.segments.get_mut(segment as usize) {
            seg.fsi.set(page, free);
        }
    }

    /// Finds a page in `segment` with at least `needed` free bytes.
    pub fn find_page_with_space(
        &self,
        segment: SegmentId,
        needed: usize,
        hint: PlacementHint,
    ) -> Option<PageId> {
        let st = self.state.lock();
        st.segments
            .get(segment as usize)?
            .fsi
            .find(needed, hint.page())
    }

    /// Locality-preserving variant: a page with enough space whose id is
    /// within `window` of `hint` (see
    /// [`FreeSpaceInventory::find_near`]).
    pub fn find_page_with_space_near(
        &self,
        segment: SegmentId,
        needed: usize,
        hint: PageId,
        window: u32,
    ) -> Option<PageId> {
        let st = self.state.lock();
        st.segments
            .get(segment as usize)?
            .fsi
            .find_near(needed, hint, window)
    }

    /// Like [`find_page_with_space`](Self::find_page_with_space) but never
    /// returns `exclude` (for record moves off a crowded page).
    pub fn find_page_with_space_excluding(
        &self,
        segment: SegmentId,
        needed: usize,
        hint: PlacementHint,
        exclude: PageId,
    ) -> Option<PageId> {
        let st = self.state.lock();
        st.segments
            .get(segment as usize)?
            .fsi
            .find_excluding(needed, hint.page(), exclude)
    }

    /// All pages of a segment (ascending) with their cached free bytes —
    /// the space-accounting walk for Figure 14.
    pub fn segment_pages(&self, segment: SegmentId) -> Vec<(PageId, u16)> {
        let st = self.state.lock();
        match st.segments.get(segment as usize) {
            Some(seg) => {
                let mut v: Vec<(PageId, u16)> = seg.fsi.iter().collect();
                v.sort_unstable();
                v
            }
            None => Vec::new(),
        }
    }

    // ------------------------------------------------------------------
    // RID-granular record operations.
    // ------------------------------------------------------------------

    /// Inserts a record into `segment`, allocating a page if necessary.
    pub fn insert_record(
        &self,
        segment: SegmentId,
        bytes: &[u8],
        hint: PlacementHint,
    ) -> StorageResult<Rid> {
        if bytes.len() > self.max_record_size() {
            return Err(StorageError::RecordTooLarge {
                len: bytes.len(),
                max: self.max_record_size(),
            });
        }
        // +SLOT_ENTRY because a new slot may be needed.
        let needed = bytes.len() + crate::slotted::SLOT_ENTRY_SIZE;
        let page_id = match self.find_page_with_space(segment, needed, hint) {
            Some(p) => p,
            None => self.allocate_page(segment, PageKind::Slotted)?,
        };
        let pin = self.buffer.pin(page_id)?;
        let mut buf = pin.write();
        let mut sp = SlottedPage::open(&mut buf)?;
        let slot = sp.insert(bytes)?;
        let free = sp.free_total();
        drop(buf);
        self.note_free_space(segment, page_id, free);
        Ok(Rid::new(page_id, slot))
    }

    /// Inserts at a caller-chosen slot on a caller-chosen page (well-known
    /// locations such as catalog roots).
    pub fn insert_record_at(
        &self,
        segment: SegmentId,
        rid: Rid,
        bytes: &[u8],
    ) -> StorageResult<()> {
        let pin = self.buffer.pin(rid.page)?;
        let mut buf = pin.write();
        let mut sp = SlottedPage::open(&mut buf)?;
        sp.insert_at(rid.slot, bytes)?;
        let free = sp.free_total();
        drop(buf);
        self.note_free_space(segment, rid.page, free);
        Ok(())
    }

    /// Copies a record's payload out of the buffer.
    pub fn read_record(&self, rid: Rid) -> StorageResult<Vec<u8>> {
        self.with_record(rid, |b| b.to_vec())
    }

    /// Runs `f` over the record payload without copying it out.
    pub fn with_record<R>(&self, rid: Rid, f: impl FnOnce(&[u8]) -> R) -> StorageResult<R> {
        let pin = self.buffer.pin(rid.page)?;
        let buf = pin.read();
        let sp = SlottedPageRef::open(&buf)?;
        match sp.get(rid.slot) {
            Some(bytes) => Ok(f(bytes)),
            None => Err(StorageError::RecordNotFound(rid)),
        }
    }

    /// Replaces a record's payload in place; fails with
    /// [`StorageError::PageFull`] when the page cannot absorb the growth
    /// (the tree layer then moves or splits the record).
    pub fn update_record(&self, segment: SegmentId, rid: Rid, bytes: &[u8]) -> StorageResult<()> {
        let pin = self.buffer.pin(rid.page)?;
        let mut buf = pin.write();
        let mut sp = SlottedPage::open(&mut buf)?;
        sp.update(rid.slot, bytes)?;
        let free = sp.free_total();
        drop(buf);
        self.note_free_space(segment, rid.page, free);
        Ok(())
    }

    /// Deletes a record. The page is *not* freed even if it becomes empty —
    /// the caller decides (the tree layer frees pages via
    /// [`free_page`](Self::free_page) when a whole document is dropped).
    pub fn delete_record(&self, segment: SegmentId, rid: Rid) -> StorageResult<()> {
        let pin = self.buffer.pin(rid.page)?;
        let mut buf = pin.write();
        let mut sp = SlottedPage::open(&mut buf)?;
        sp.delete(rid.slot)
            .map_err(|_| StorageError::RecordNotFound(rid))?;
        let free = sp.free_total();
        drop(buf);
        self.note_free_space(segment, rid.page, free);
        Ok(())
    }

    /// Free bytes currently available on `page` (authoritative, not FSI).
    pub fn page_free_space(&self, page: PageId) -> StorageResult<usize> {
        let pin = self.buffer.pin(page)?;
        let buf = pin.read();
        Ok(buf.free_total() as usize)
    }

    // ------------------------------------------------------------------
    // User root area (catalog bootstrap) and checkpointing.
    // ------------------------------------------------------------------

    /// Reads the 64-byte user-root area of the header page.
    pub fn user_root(&self) -> StorageResult<[u8; USER_ROOT_LEN]> {
        let pin = self.buffer.pin(0)?;
        let buf = pin.read();
        let mut out = [0u8; USER_ROOT_LEN];
        out.copy_from_slice(&buf.bytes()[OFF_USER_ROOT..OFF_USER_ROOT + USER_ROOT_LEN]);
        Ok(out)
    }

    /// Writes the user-root area.
    pub fn set_user_root(&self, data: &[u8]) -> StorageResult<()> {
        assert!(data.len() <= USER_ROOT_LEN);
        let pin = self.buffer.pin(0)?;
        let mut buf = pin.write();
        buf.bytes_mut()[OFF_USER_ROOT..OFF_USER_ROOT + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Persists the space maps and flushes every dirty page. After a
    /// checkpoint, [`StorageManager::open`] restores the exact state.
    pub fn checkpoint(&self) -> StorageResult<()> {
        let mut st = self.state.lock();
        // Rewrite each segment's space-map chain from the in-memory FSI.
        let per_page = (self.page_size() - PAGE_HEADER_SIZE) / SPACEMAP_ENTRY;
        for i in 0..st.segments.len() {
            let entries: Vec<(PageId, u16)> = {
                let mut v: Vec<(PageId, u16)> = st.segments[i].fsi.iter().collect();
                v.sort_unstable();
                v
            };
            let mut chain: Vec<PageId> = Vec::new();
            let mut cur = st.segments[i].spacemap_head;
            while cur != INVALID_PAGE {
                chain.push(cur);
                cur = self.buffer.pin(cur)?.read().next_page();
            }
            let pages_needed = entries.chunks(per_page).count().max(1);
            while chain.len() < pages_needed {
                let p = self.alloc_raw(&mut st, NO_ALLOC_SEGMENT)?;
                let pin = self.buffer.pin_new(p)?;
                pin.write().format(PageKind::SpaceMap);
                chain.push(p);
            }
            // Return surplus chain pages to the free pool.
            while let Some(p) = (chain.len() > pages_needed).then(|| chain.pop()).flatten() {
                self.buffer.discard(p)?;
                let pin = self.buffer.pin_new(p)?;
                {
                    let mut buf = pin.write();
                    buf.format(PageKind::Free);
                    buf.set_next_page(st.free_list_head);
                }
                st.free_list_head = p;
            }
            let mut chunks = entries.chunks(per_page);
            for (ci, &page_id) in chain.iter().enumerate() {
                let chunk = chunks.next().unwrap_or(&[]);
                let pin = self.buffer.pin(page_id)?;
                let mut buf = pin.write();
                buf.format(PageKind::SpaceMap);
                buf.set_slot_count(chunk.len() as u16);
                for (e, &(p, f)) in chunk.iter().enumerate() {
                    let at = PAGE_HEADER_SIZE + e * SPACEMAP_ENTRY;
                    buf.write_u32(at, p);
                    buf.write_u16(at + 4, f);
                }
                let next = chain.get(ci + 1).copied().unwrap_or(INVALID_PAGE);
                buf.set_next_page(next);
            }
            st.segments[i].spacemap_head = chain[0];
        }
        self.persist_segdir(&st)?;
        self.persist_alloc_state(&st)?;
        drop(st);
        self.buffer.flush_all()?;
        self.buffer.backend().sync()
    }

    /// Total pages allocated so far (allocation high-water mark), including
    /// the header and space maps.
    pub fn allocated_pages(&self) -> u64 {
        self.state.lock().next_unallocated as u64
    }

    // ------------------------------------------------------------------
    // WAL checkpointing and crash recovery.
    // ------------------------------------------------------------------

    /// Builds an allocator snapshot and appends it to the attached log as
    /// a [`WalRecord::Checkpoint`]. Snapshot capture and append both run
    /// under the state lock — the same lock every Alloc/Free/SegCreate
    /// append holds — so each allocation event lands either inside the
    /// snapshot or after the checkpoint record in the log, never both.
    ///
    /// When `quiesced` is provided the truncate-reset fast path is tried
    /// first: flush the append buffer, then atomically replace the whole
    /// log with the single checkpoint record if nothing appended meanwhile
    /// and `quiesced` still holds (see [`Wal::try_truncate_reset`]).
    /// Otherwise (or on any mismatch) a fuzzy checkpoint is appended; the
    /// caller is responsible for syncing it.
    ///
    /// No-op without an attached log. Must be called outside any
    /// [`crate::wal::SuppressLogging`] region.
    pub fn append_checkpoint(
        &self,
        redo_horizon: u64,
        catalog: Vec<u8>,
        quiesced: Option<&dyn Fn() -> bool>,
    ) -> StorageResult<()> {
        let Some(wal) = self.wal.get() else {
            return Ok(());
        };
        let user_root = self.user_root()?.to_vec();
        let st = self.state.lock();
        let mut free_list = Vec::new();
        let mut cur = st.free_list_head;
        while cur != INVALID_PAGE {
            free_list.push(cur);
            cur = self.buffer.pin(cur)?.read().next_page();
        }
        // Space-map chain pages are reachable only through the header
        // page, which recovery discards; listing them as free lets a
        // recovered store reuse them (chains are rebuilt from the FSI on
        // the next checkpoint).
        for seg in &st.segments {
            let mut cur = seg.spacemap_head;
            while cur != INVALID_PAGE {
                free_list.push(cur);
                cur = self.buffer.pin(cur)?.read().next_page();
            }
        }
        let segments = st
            .segments
            .iter()
            .map(|s| {
                let mut pages: Vec<(PageId, u16)> = s.fsi.iter().collect();
                pages.sort_unstable();
                SegmentSnapshot {
                    name: s.name.clone(),
                    pages,
                }
            })
            .collect();
        let snap = StoreSnapshot {
            redo_horizon,
            next_unallocated: st.next_unallocated,
            free_list,
            segments,
            user_root,
            catalog,
        };
        if let Some(pred) = quiesced {
            wal.flush_buffered()?;
            let expected = wal.appended_lsn();
            // In the reset log this checkpoint sits at offset 0 and is the
            // only surviving record: every LSN restarts, so the redo
            // horizon must restart with them — keeping the pre-truncate
            // horizon would make every later record look pre-checkpoint
            // and redo would skip it all.
            let reset = WalRecord::Checkpoint(Box::new(StoreSnapshot {
                redo_horizon: 0,
                ..snap.clone()
            }));
            if wal.try_truncate_reset(expected, pred, &reset)? {
                return Ok(());
            }
        }
        wal.append(&WalRecord::Checkpoint(Box::new(snap)));
        Ok(())
    }

    /// Rebuilds a storage manager from a checkpoint snapshot, rewriting
    /// the (untrustworthy post-crash) header page from it. The free list
    /// starts empty — recovery folds the post-checkpoint Alloc/Free
    /// records into the snapshot's list and installs the result via
    /// [`install_free_list`](Self::install_free_list).
    pub fn restore_from_snapshot(
        buffer: Arc<BufferManager>,
        snap: &StoreSnapshot,
    ) -> StorageResult<StorageManager> {
        let next_unallocated = snap.next_unallocated.max(1);
        buffer.backend().grow(next_unallocated as u64)?;
        buffer.discard(0)?;
        {
            let hdr = buffer.pin_new(0)?;
            let mut page = hdr.write();
            page.format(PageKind::Header);
            page.bytes_mut()[OFF_MAGIC..OFF_MAGIC + 8].copy_from_slice(MAGIC);
            page.write_u32(OFF_VERSION, VERSION);
            page.write_u32(OFF_PAGE_SIZE, buffer.page_size() as u32);
            page.write_u32(OFF_NEXT_UNALLOCATED, next_unallocated);
            page.write_u32(OFF_FREE_LIST, INVALID_PAGE);
            page.write_u16(OFF_SEGMENT_COUNT, snap.segments.len() as u16);
            let n = snap.user_root.len().min(USER_ROOT_LEN);
            page.bytes_mut()[OFF_USER_ROOT..OFF_USER_ROOT + n]
                .copy_from_slice(&snap.user_root[..n]);
            for (i, seg) in snap.segments.iter().enumerate() {
                let at = OFF_SEGDIR + i * SEGDIR_ENTRY;
                page.write_u32(at, INVALID_PAGE);
                let name = seg.name.as_bytes();
                page.write_u16(at + 4, name.len() as u16);
                page.bytes_mut()[at + 6..at + 6 + name.len()].copy_from_slice(name);
            }
        }
        let segments = snap
            .segments
            .iter()
            .map(|s| {
                let mut fsi = FreeSpaceInventory::new();
                for &(p, f) in &s.pages {
                    fsi.set(p, f);
                }
                SegmentState {
                    name: s.name.clone(),
                    fsi,
                    spacemap_head: INVALID_PAGE,
                }
            })
            .collect();
        Ok(StorageManager {
            buffer,
            state: Mutex::with_rank(
                &parking_lot::rank::ALLOCATOR,
                SmState {
                    next_unallocated,
                    free_list_head: INVALID_PAGE,
                    segments,
                },
            ),
            wal: OnceLock::new(),
        })
    }

    /// Raises the allocation high-water mark (recovery: fold of the
    /// post-checkpoint Alloc records) and grows the backend to match.
    pub fn set_next_unallocated(&self, next: PageId) -> StorageResult<()> {
        let mut st = self.state.lock();
        if next > st.next_unallocated {
            st.next_unallocated = next;
            #[cfg(feature = "lockdep")]
            let _io = parking_lot::lockdep::io_region("storage.grow");
            self.buffer.backend().grow(next as u64)?;
        }
        self.persist_alloc_state(&st)
    }

    /// Installs `pages` (head first) as the free list: formats each page
    /// as `Free`, chains them, and drops them from every free-space
    /// inventory.
    pub fn install_free_list(&self, pages: &[PageId]) -> StorageResult<()> {
        let mut st = self.state.lock();
        let mut head = INVALID_PAGE;
        for &p in pages.iter().rev() {
            self.buffer.discard(p)?;
            let pin = self.buffer.pin_new(p)?;
            {
                let mut buf = pin.write();
                buf.format(PageKind::Free);
                buf.set_next_page(head);
            }
            head = p;
        }
        st.free_list_head = head;
        for seg in &mut st.segments {
            for &p in pages {
                seg.fsi.remove(p);
            }
        }
        self.persist_alloc_state(&st)
    }

    /// Re-registers `page` in `segment`'s free-space inventory with a
    /// placeholder value (recovery: a page allocated after the checkpoint
    /// whose Alloc record survived — without this the page would stay
    /// allocated but invisible to the inventory and to every later
    /// snapshot). Call [`refresh_fsi_from_pages`] afterwards to replace
    /// the placeholder with the page's real free space. Unknown segments
    /// are ignored: the log may carry allocations for segments whose
    /// creation never became durable.
    ///
    /// [`refresh_fsi_from_pages`]: Self::refresh_fsi_from_pages
    pub fn adopt_page(&self, segment: SegmentId, page: PageId) {
        let mut st = self.state.lock();
        if let Some(seg) = st.segments.get_mut(segment as usize) {
            seg.fsi.set(page, 0);
        }
    }

    /// Re-derives every cached free-space value from the pages themselves
    /// (recovery: redo/undo may have changed them since the snapshot).
    /// Entries whose page is free — or unreadable — are dropped.
    pub fn refresh_fsi_from_pages(&self) -> StorageResult<()> {
        let mut st = self.state.lock();
        for si in 0..st.segments.len() {
            let pages: Vec<PageId> = st.segments[si].fsi.iter().map(|(p, _)| p).collect();
            for p in pages {
                let pin = self.buffer.pin(p)?;
                let free = {
                    let buf = pin.read();
                    match buf.kind() {
                        Ok(PageKind::Free) | Err(_) => None,
                        Ok(_) => Some(buf.free_total()),
                    }
                };
                match free {
                    Some(f) => st.segments[si].fsi.set(p, f),
                    None => {
                        st.segments[si].fsi.remove(p);
                    }
                }
            }
        }
        Ok(())
    }

    /// Pages below the allocation high-water mark that no structure
    /// accounts for: not the header page, not on the free-list chain, in
    /// no segment's free-space inventory, and on no space-map chain.
    ///
    /// On a healthy quiescent store this is empty. After crash recovery
    /// it is exactly the *loser allocations*: `Alloc` records carry no
    /// operation id, so recovery re-adopts every post-checkpoint
    /// allocation, and [`refresh_fsi_from_pages`] then drops the ones
    /// whose content never reached disk (unreadable or still zeroed) —
    /// leaving them allocated but unreachable until the next full
    /// checkpoint rebuilds the snapshot. Callers must hold the store
    /// quiescent: a concurrent [`allocate_page`] has a window where the
    /// fresh page is in no inventory yet.
    ///
    /// [`refresh_fsi_from_pages`]: Self::refresh_fsi_from_pages
    /// [`allocate_page`]: Self::allocate_page
    pub fn untracked_pages(&self) -> StorageResult<Vec<PageId>> {
        let st = self.state.lock();
        let mut tracked = vec![false; st.next_unallocated as usize];
        if let Some(header) = tracked.get_mut(0) {
            *header = true;
        }
        let mut cur = st.free_list_head;
        while cur != INVALID_PAGE {
            if let Some(t) = tracked.get_mut(cur as usize) {
                *t = true;
            }
            cur = self.buffer.pin(cur)?.read().next_page();
        }
        for seg in &st.segments {
            for (p, _) in seg.fsi.iter() {
                if let Some(t) = tracked.get_mut(p as usize) {
                    *t = true;
                }
            }
            let mut cur = seg.spacemap_head;
            while cur != INVALID_PAGE {
                if let Some(t) = tracked.get_mut(cur as usize) {
                    *t = true;
                }
                cur = self.buffer.pin(cur)?.read().next_page();
            }
        }
        Ok(tracked
            .iter()
            .enumerate()
            .filter(|&(_, tracked)| !tracked)
            .map(|(p, _)| p as PageId)
            .collect())
    }

    /// Returns every [`untracked_pages`] orphan to the global free pool
    /// (recovery: release loser allocations instead of leaking them until
    /// the next checkpoint). Reports the pages it reclaimed. Frees are
    /// logged like [`free_page`] frees, so a crash after recovery cannot
    /// resurrect the orphans; without an attached log this is a no-op
    /// append.
    ///
    /// [`untracked_pages`]: Self::untracked_pages
    /// [`free_page`]: Self::free_page
    pub fn reclaim_untracked_pages(&self) -> StorageResult<Vec<PageId>> {
        let orphans = self.untracked_pages()?;
        if orphans.is_empty() {
            return Ok(orphans);
        }
        let mut st = self.state.lock();
        for &page in &orphans {
            self.buffer.discard(page)?;
            let pin = self.buffer.pin_new(page)?;
            {
                let mut buf = pin.write();
                buf.format(PageKind::Free);
                buf.set_next_page(st.free_list_head);
            }
            drop(pin);
            st.free_list_head = page;
            self.wal_append(&WalRecord::Free { page });
        }
        self.persist_alloc_state(&st)?;
        Ok(orphans)
    }

    /// Reformats every page of `segment` as an empty slotted page
    /// (recovery: the catalog segment is rebuilt from the logged
    /// directory, so its stale pre-crash pages are wiped first).
    pub fn wipe_segment_pages(&self, segment: SegmentId) -> StorageResult<()> {
        let mut st = self.state.lock();
        if segment as usize >= st.segments.len() {
            return Err(StorageError::NoSuchSegment(segment));
        }
        let pages: Vec<PageId> = st.segments[segment as usize]
            .fsi
            .iter()
            .map(|(p, _)| p)
            .collect();
        for p in pages {
            self.buffer.discard(p)?;
            let pin = self.buffer.pin_new(p)?;
            let free = {
                let mut buf = pin.write();
                SlottedPage::format(&mut buf);
                buf.free_total()
            };
            st.segments[segment as usize].fsi.set(p, free);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::EvictionPolicy;
    use crate::disk::MemStorage;
    use crate::stats::IoStats;

    fn mk(page_size: usize, frames: usize) -> StorageManager {
        let backend = Arc::new(MemStorage::new(page_size).unwrap());
        let bm = Arc::new(BufferManager::new(
            backend,
            frames,
            EvictionPolicy::Lru,
            IoStats::new_shared(),
        ));
        StorageManager::create(bm).unwrap()
    }

    #[test]
    fn create_segment_and_records() {
        let sm = mk(2048, 16);
        let seg = sm.create_segment("docs").unwrap();
        let rid = sm
            .insert_record(seg, b"hello natix", PlacementHint::Anywhere)
            .unwrap();
        assert_eq!(sm.read_record(rid).unwrap(), b"hello natix");
        sm.update_record(seg, rid, b"updated").unwrap();
        assert_eq!(sm.read_record(rid).unwrap(), b"updated");
        sm.delete_record(seg, rid).unwrap();
        assert!(sm.read_record(rid).is_err());
    }

    #[test]
    fn placement_hint_clusters_records() {
        let sm = mk(2048, 16);
        let seg = sm.create_segment("docs").unwrap();
        let a = sm
            .insert_record(seg, &[0u8; 100], PlacementHint::Anywhere)
            .unwrap();
        let b = sm
            .insert_record(seg, &[1u8; 100], PlacementHint::NearPage(a.page))
            .unwrap();
        assert_eq!(a.page, b.page, "hint should cluster on the same page");
    }

    #[test]
    fn records_spill_to_new_pages() {
        let sm = mk(512, 16);
        let seg = sm.create_segment("docs").unwrap();
        let mut pages = std::collections::HashSet::new();
        for _ in 0..20 {
            let rid = sm
                .insert_record(seg, &[7u8; 200], PlacementHint::Anywhere)
                .unwrap();
            pages.insert(rid.page);
        }
        assert!(pages.len() >= 10, "two 200-byte records per 512-byte page");
    }

    #[test]
    fn oversized_record_rejected() {
        let sm = mk(512, 16);
        let seg = sm.create_segment("docs").unwrap();
        let big = vec![0u8; 600];
        assert!(matches!(
            sm.insert_record(seg, &big, PlacementHint::Anywhere),
            Err(StorageError::RecordTooLarge { .. })
        ));
    }

    #[test]
    fn free_page_recycled() {
        let sm = mk(2048, 16);
        let seg = sm.create_segment("docs").unwrap();
        let p1 = sm.allocate_page(seg, PageKind::Slotted).unwrap();
        sm.free_page(seg, p1).unwrap();
        let p2 = sm.allocate_page(seg, PageKind::Plain).unwrap();
        assert_eq!(p1, p2, "freed page is reused first");
    }

    #[test]
    fn user_root_roundtrip() {
        let sm = mk(2048, 16);
        sm.set_user_root(b"catalog@42").unwrap();
        let root = sm.user_root().unwrap();
        assert_eq!(&root[..10], b"catalog@42");
    }

    #[test]
    fn checkpoint_reopen_preserves_everything() {
        let backend = Arc::new(MemStorage::new(1024).unwrap());
        let stats = IoStats::new_shared();
        let bm = Arc::new(BufferManager::new(
            Arc::clone(&backend) as Arc<dyn crate::disk::DiskBackend>,
            16,
            EvictionPolicy::Lru,
            Arc::clone(&stats),
        ));
        let sm = StorageManager::create(Arc::clone(&bm)).unwrap();
        let seg = sm.create_segment("docs").unwrap();
        let seg2 = sm.create_segment("index").unwrap();
        let mut rids = Vec::new();
        for i in 0..50u8 {
            rids.push(
                sm.insert_record(seg, &[i; 64], PlacementHint::Anywhere)
                    .unwrap(),
            );
        }
        let irid = sm
            .insert_record(seg2, b"idx", PlacementHint::Anywhere)
            .unwrap();
        sm.set_user_root(b"root!").unwrap();
        sm.checkpoint().unwrap();
        drop(sm);
        bm.clear().unwrap();

        let sm = StorageManager::open(bm).unwrap();
        assert_eq!(sm.segment_by_name("docs"), Some(seg));
        assert_eq!(sm.segment_by_name("index"), Some(seg2));
        for (i, rid) in rids.iter().enumerate() {
            assert_eq!(sm.read_record(*rid).unwrap(), vec![i as u8; 64]);
        }
        assert_eq!(sm.read_record(irid).unwrap(), b"idx");
        assert_eq!(&sm.user_root().unwrap()[..5], b"root!");
        // FSI survives: a small record lands on an existing page.
        let r = sm
            .insert_record(seg, &[9u8; 16], PlacementHint::Anywhere)
            .unwrap();
        assert!(rids.iter().any(|old| old.page == r.page));
    }

    /// Old-format fixture: a version-1 image (written before proxy label
    /// digests existed) must still open — digest-less proxies decode as
    /// the "must read" sentinel upstream. Versions outside
    /// `MIN_VERSION..=VERSION` must be rejected.
    #[test]
    fn version_1_stores_open_and_future_versions_are_rejected() {
        use crate::disk::DiskBackend;
        let backend = Arc::new(MemStorage::new(1024).unwrap());
        let stats = IoStats::new_shared();
        let bm = Arc::new(BufferManager::new(
            Arc::clone(&backend) as Arc<dyn DiskBackend>,
            16,
            EvictionPolicy::Lru,
            Arc::clone(&stats),
        ));
        let sm = StorageManager::create(Arc::clone(&bm)).unwrap();
        let seg = sm.create_segment("docs").unwrap();
        let rid = sm
            .insert_record(seg, b"pre-digest payload", PlacementHint::Anywhere)
            .unwrap();
        sm.checkpoint().unwrap();
        drop(sm);

        let reopen_with_version = |version: u32| {
            bm.clear().unwrap();
            let mut hdr = vec![0u8; 1024];
            backend.read_page(0, &mut hdr).unwrap();
            hdr[OFF_VERSION..OFF_VERSION + 4].copy_from_slice(&version.to_le_bytes());
            backend.write_page(0, &hdr).unwrap();
            bm.clear().unwrap();
            StorageManager::open(Arc::clone(&bm))
        };

        let sm = reopen_with_version(1).expect("version-1 image must open");
        assert_eq!(sm.read_record(rid).unwrap(), b"pre-digest payload");
        drop(sm);

        for bad in [0u32, VERSION + 1] {
            let Err(err) = reopen_with_version(bad) else {
                panic!("version {bad} must be rejected");
            };
            assert!(
                err.to_string().contains("unsupported format version"),
                "unexpected error for version {bad}: {err}"
            );
        }
    }

    #[test]
    fn find_page_with_space_excluding() {
        let sm = mk(512, 16);
        let seg = sm.create_segment("docs").unwrap();
        let a = sm
            .insert_record(seg, &[1u8; 100], PlacementHint::Anywhere)
            .unwrap();
        let found = sm.find_page_with_space_excluding(seg, 50, PlacementHint::Anywhere, a.page);
        assert!(found.is_none(), "only one page exists and it is excluded");
    }

    #[test]
    fn unknown_segment_errors() {
        let sm = mk(512, 16);
        assert!(matches!(
            sm.allocate_page(3, PageKind::Plain),
            Err(StorageError::NoSuchSegment(3))
        ));
    }
}
