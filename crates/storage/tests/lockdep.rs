//! Held-across-I/O detection against the real buffer manager: the I/O
//! regions declared in `buffer.rs` must reject callers that enter them
//! while holding a non-I/O-tolerant ranked lock, and must stay silent
//! for the storage band's own (io-tolerant) locks.
//!
//! Only meaningful with the lockdep feature — without it the regions
//! compile away.
#![cfg(feature = "lockdep")]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use natix_storage::{BufferManager, EvictionPolicy, IoStats, MemStorage};
use parking_lot::rank::Rank;
use parking_lot::Mutex;

/// An upper-layer lock that must never be held across device I/O.
static UPPER: Rank = Rank::new("test.upper-layer", 10);
/// A storage-band lock, exempt from the detector.
static TOLERANT: Rank = Rank::new_io_tolerant("test.io-band", 20);

fn pool(frames: usize) -> BufferManager {
    let backend = Arc::new(MemStorage::new(512).unwrap());
    BufferManager::new(backend, frames, EvictionPolicy::Lru, IoStats::new_shared())
}

fn dirty_page(bm: &BufferManager, page: u32) {
    bm.backend().grow(page as u64 + 1).unwrap();
    let pin = bm.pin_new(page).unwrap();
    pin.write().bytes_mut()[0] = 0xA5;
}

#[test]
fn write_back_rejects_held_upper_layer_lock() {
    let bm = pool(4);
    dirty_page(&bm, 0);
    let held = Mutex::with_rank(&UPPER, ());
    let guard = held.lock();
    let err = catch_unwind(AssertUnwindSafe(|| bm.flush_all())).unwrap_err();
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .expect("panic carries a formatted message");
    assert!(msg.contains("I/O region 'buffer.write-back'"), "{msg}");
    assert!(msg.contains("test.upper-layer"), "{msg}");
    drop(guard);
}

#[test]
fn page_read_rejects_held_upper_layer_lock() {
    let bm = pool(4);
    dirty_page(&bm, 0);
    bm.flush_all().unwrap();
    bm.clear().unwrap();
    let held = Mutex::with_rank(&UPPER, ());
    let guard = held.lock();
    let err = catch_unwind(AssertUnwindSafe(|| bm.pin(0).map(|_| ()))).unwrap_err();
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .expect("panic carries a formatted message");
    assert!(msg.contains("I/O region 'buffer.read-page'"), "{msg}");
    assert!(msg.contains("test.upper-layer"), "{msg}");
    drop(guard);
}

#[test]
fn prefetch_rejects_held_upper_layer_lock() {
    let bm = pool(4);
    for p in 0..3 {
        dirty_page(&bm, p);
    }
    bm.flush_all().unwrap();
    bm.clear().unwrap();
    let held = Mutex::with_rank(&UPPER, ());
    let guard = held.lock();
    let err = catch_unwind(AssertUnwindSafe(|| bm.prefetch(&[0, 1, 2]).map(|_| ()))).unwrap_err();
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .expect("panic carries a formatted message");
    assert!(msg.contains("I/O region 'buffer.prefetch'"), "{msg}");
    assert!(msg.contains("test.upper-layer"), "{msg}");
    drop(guard);
}

#[test]
fn io_tolerant_holders_pass() {
    let bm = pool(4);
    dirty_page(&bm, 0);
    let held = Mutex::with_rank(&TOLERANT, ());
    let guard = held.lock();
    bm.flush_all().unwrap();
    bm.clear().unwrap();
    let pin = bm.pin(0).unwrap();
    assert_eq!(pin.read().bytes()[0], 0xA5);
    drop(pin);
    bm.clear().unwrap();
    bm.prefetch(&[0]).unwrap();
    drop(guard);
}
