//! Property-based tests: slotted pages against a shadow model, and the
//! B+-tree against `BTreeMap`.

use std::collections::HashMap;

use proptest::prelude::*;

use natix_storage::slotted::SlottedPage;
use natix_storage::{PageBuf, StorageError};

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<u8>),
    Update(usize, Vec<u8>),
    Delete(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => proptest::collection::vec(any::<u8>(), 0..120).prop_map(Op::Insert),
        2 => (any::<usize>(), proptest::collection::vec(any::<u8>(), 0..150))
            .prop_map(|(i, b)| Op::Update(i, b)),
        1 => any::<usize>().prop_map(Op::Delete),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Arbitrary op sequences never corrupt a page: every live record
    /// reads back exactly, and the internal free-space accounting plus the
    /// no-overlap invariant hold after every operation.
    #[test]
    fn slotted_page_matches_shadow(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        page_size in prop_oneof![Just(512usize), Just(1024), Just(4096)],
    ) {
        let mut page = PageBuf::new(page_size);
        SlottedPage::format(&mut page);
        let mut sp = SlottedPage::open(&mut page).unwrap();
        let mut shadow: HashMap<u16, Vec<u8>> = HashMap::new();
        for op in ops {
            match op {
                Op::Insert(bytes) => match sp.insert(&bytes) {
                    Ok(slot) => {
                        shadow.insert(slot, bytes);
                    }
                    Err(StorageError::PageFull { .. }) => {}
                    Err(e) => panic!("unexpected: {e}"),
                },
                Op::Update(pick, bytes) => {
                    let slots: Vec<u16> = shadow.keys().copied().collect();
                    if slots.is_empty() { continue; }
                    let slot = slots[pick % slots.len()];
                    match sp.update(slot, &bytes) {
                        Ok(()) => { shadow.insert(slot, bytes); }
                        Err(StorageError::PageFull { .. }) => {}
                        Err(e) => panic!("unexpected: {e}"),
                    }
                }
                Op::Delete(pick) => {
                    let slots: Vec<u16> = shadow.keys().copied().collect();
                    if slots.is_empty() { continue; }
                    let slot = slots[pick % slots.len()];
                    sp.delete(slot).unwrap();
                    shadow.remove(&slot);
                }
            }
            sp.check_invariants().unwrap();
            for (&slot, bytes) in &shadow {
                prop_assert_eq!(sp.get(slot), Some(bytes.as_slice()));
            }
        }
    }
}

mod btree_props {
    use super::*;
    use natix_storage::btree::BTree;
    use natix_storage::{BufferManager, EvictionPolicy, IoStats, MemStorage, StorageManager};
    use std::collections::BTreeMap;
    use std::sync::Arc;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn btree_matches_btreemap(
            ops in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..400),
        ) {
            let backend = Arc::new(MemStorage::new(512).unwrap());
            let bm = Arc::new(BufferManager::new(
                backend, 128, EvictionPolicy::Lru, IoStats::new_shared(),
            ));
            let sm = StorageManager::create(bm).unwrap();
            let seg = sm.create_segment("idx").unwrap();
            let bt = BTree::create(&sm, seg, 2).unwrap();
            let mut shadow: BTreeMap<u16, u64> = BTreeMap::new();
            for (key, action) in ops {
                let k = key.to_be_bytes();
                if action % 4 == 0 {
                    prop_assert_eq!(bt.delete(&k).unwrap(), shadow.remove(&key));
                } else {
                    let v = action as u64;
                    prop_assert_eq!(bt.insert(&k, v).unwrap(), shadow.insert(key, v));
                }
            }
            // Full scan agrees, in order.
            let all = bt.collect_all().unwrap();
            prop_assert_eq!(all.len(), shadow.len());
            for ((k, v), (sk, sv)) in all.iter().zip(shadow.iter()) {
                let expect = sk.to_be_bytes();
                prop_assert_eq!(k.as_slice(), expect.as_slice());
                prop_assert_eq!(v, sv);
            }
            // Random range agrees.
            if let (Some(&lo), Some(&hi)) = (shadow.keys().next(), shadow.keys().last()) {
                let got = bt.range_collect(&lo.to_be_bytes(), &hi.to_be_bytes()).unwrap();
                prop_assert_eq!(got.len(), shadow.len());
            }
        }
    }
}
