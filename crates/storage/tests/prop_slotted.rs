//! Property-based tests: slotted pages against a shadow model, and the
//! B+-tree against `BTreeMap`.
//!
//! The build environment has no network access, so instead of `proptest`
//! the cases are driven by a small deterministic SplitMix64 generator over
//! many seeds — same shadow-model properties, reproducible by seed.

use std::collections::HashMap;

use natix_corpus::SplitMix64 as Gen;
use natix_storage::slotted::SlottedPage;
use natix_storage::{PageBuf, StorageError};

fn random_bytes(g: &mut Gen, max_len: usize) -> Vec<u8> {
    let len = g.below(max_len + 1);
    (0..len).map(|_| g.next_u64() as u8).collect()
}

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<u8>),
    Update(usize, Vec<u8>),
    Delete(usize),
}

fn random_op(g: &mut Gen) -> Op {
    match g.below(6) {
        0..=2 => Op::Insert(random_bytes(g, 120)),
        3..=4 => Op::Update(g.below(usize::MAX / 2), random_bytes(g, 150)),
        _ => Op::Delete(g.below(usize::MAX / 2)),
    }
}

/// Arbitrary op sequences never corrupt a page: every live record reads
/// back exactly, and the internal free-space accounting plus the
/// no-overlap invariant hold after every operation.
#[test]
fn slotted_page_matches_shadow() {
    for case in 0..64u64 {
        let mut g = Gen::new(case);
        let page_size = [512usize, 1024, 4096][g.below(3)];
        let nops = 1 + g.below(120);
        let mut page = PageBuf::new(page_size);
        SlottedPage::format(&mut page);
        let mut sp = SlottedPage::open(&mut page).unwrap();
        let mut shadow: HashMap<u16, Vec<u8>> = HashMap::new();
        for _ in 0..nops {
            match random_op(&mut g) {
                Op::Insert(bytes) => match sp.insert(&bytes) {
                    Ok(slot) => {
                        shadow.insert(slot, bytes);
                    }
                    Err(StorageError::PageFull { .. }) => {}
                    Err(e) => panic!("case {case}: unexpected: {e}"),
                },
                Op::Update(pick, bytes) => {
                    let mut slots: Vec<u16> = shadow.keys().copied().collect();
                    slots.sort_unstable();
                    if slots.is_empty() {
                        continue;
                    }
                    let slot = slots[pick % slots.len()];
                    match sp.update(slot, &bytes) {
                        Ok(()) => {
                            shadow.insert(slot, bytes);
                        }
                        Err(StorageError::PageFull { .. }) => {}
                        Err(e) => panic!("case {case}: unexpected: {e}"),
                    }
                }
                Op::Delete(pick) => {
                    let mut slots: Vec<u16> = shadow.keys().copied().collect();
                    slots.sort_unstable();
                    if slots.is_empty() {
                        continue;
                    }
                    let slot = slots[pick % slots.len()];
                    sp.delete(slot).unwrap();
                    shadow.remove(&slot);
                }
            }
            sp.check_invariants().unwrap();
            for (&slot, bytes) in &shadow {
                assert_eq!(sp.get(slot), Some(bytes.as_slice()), "case {case}");
            }
        }
    }
}

mod btree_props {
    use super::Gen;
    use natix_storage::btree::BTree;
    use natix_storage::{BufferManager, EvictionPolicy, IoStats, MemStorage, StorageManager};
    use std::collections::BTreeMap;
    use std::sync::Arc;

    #[test]
    fn btree_matches_btreemap() {
        for case in 0..32u64 {
            let mut g = Gen::new(0xB7EE ^ case);
            let nops = 1 + g.below(400);
            let backend = Arc::new(MemStorage::new(512).unwrap());
            let bm = Arc::new(BufferManager::new(
                backend,
                128,
                EvictionPolicy::Lru,
                IoStats::new_shared(),
            ));
            let sm = StorageManager::create(bm).unwrap();
            let seg = sm.create_segment("idx").unwrap();
            let bt = BTree::create(&sm, seg, 2).unwrap();
            let mut shadow: BTreeMap<u16, u64> = BTreeMap::new();
            for _ in 0..nops {
                let key = g.next_u64() as u16;
                let action = g.next_u64() as u8;
                let k = key.to_be_bytes();
                if action.is_multiple_of(4) {
                    assert_eq!(bt.delete(&k).unwrap(), shadow.remove(&key), "case {case}");
                } else {
                    let v = action as u64;
                    assert_eq!(
                        bt.insert(&k, v).unwrap(),
                        shadow.insert(key, v),
                        "case {case}"
                    );
                }
            }
            // Full scan agrees, in order.
            let all = bt.collect_all().unwrap();
            assert_eq!(all.len(), shadow.len(), "case {case}");
            for ((k, v), (sk, sv)) in all.iter().zip(shadow.iter()) {
                let expect = sk.to_be_bytes();
                assert_eq!(k.as_slice(), expect.as_slice(), "case {case}");
                assert_eq!(v, sv, "case {case}");
            }
            // Random range agrees.
            if let (Some(&lo), Some(&hi)) = (shadow.keys().next(), shadow.keys().last()) {
                let got = bt
                    .range_collect(&lo.to_be_bytes(), &hi.to_be_bytes())
                    .unwrap();
                assert_eq!(got.len(), shadow.len(), "case {case}");
            }
        }
    }
}
