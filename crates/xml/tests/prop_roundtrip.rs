//! Property-based tests: random logical documents survive
//! serialise → parse → serialise unchanged, and the parser never panics on
//! arbitrary input.
//!
//! The build environment has no network access, so instead of `proptest`
//! the cases are driven by a small deterministic SplitMix64 generator over
//! many seeds — same properties, reproducible by seed.

use natix_xml::{
    parse_document, write_document, Document, NodeData, ParserOptions, SymbolTable, WriteOptions,
};

use natix_corpus::SplitMix64 as Gen;

/// Random tag name: `[A-Za-z][A-Za-z0-9_-]{0,8}`.
fn tag(g: &mut Gen) -> String {
    const FIRST: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz";
    const REST: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789_-";
    let mut s = String::new();
    s.push(FIRST[g.below(FIRST.len())] as char);
    for _ in 0..g.below(9) {
        s.push(REST[g.below(REST.len())] as char);
    }
    s
}

/// Random text content, including characters that need escaping. Always
/// starts with a letter: whitespace-only text nodes are dropped by the
/// default parser options (by design), so they cannot roundtrip and are
/// out of scope here.
fn text(g: &mut Gen) -> String {
    let mut s = String::new();
    s.push((b'a' + g.below(26) as u8) as char);
    for _ in 0..g.below(23) {
        match g.below(10) {
            0..=7 => s.push((b'a' + g.below(26) as u8) as char),
            8 => s.push(' '),
            _ => s.push_str(["<", ">", "&", "\"", "é"][g.below(5)]),
        }
    }
    s
}

#[derive(Debug, Clone)]
enum Shape {
    Text(String),
    Element {
        tag: String,
        attrs: Vec<(String, String)>,
        children: Vec<Shape>,
    },
}

fn shape(g: &mut Gen, depth: usize) -> Shape {
    let attrs = |g: &mut Gen| -> Vec<(String, String)> {
        (0..g.below(3)).map(|_| (tag(g), text(g))).collect()
    };
    if depth >= 4 || g.below(5) < 2 {
        // Leaf.
        if g.below(5) < 3 {
            Shape::Text(text(g))
        } else {
            Shape::Element {
                tag: tag(g),
                attrs: attrs(g),
                children: vec![],
            }
        }
    } else {
        let children = (0..g.below(6)).map(|_| shape(g, depth + 1)).collect();
        Shape::Element {
            tag: tag(g),
            attrs: attrs(g),
            children,
        }
    }
}

fn build(shape: &Shape, doc: &mut Document, parent: u32, syms: &mut SymbolTable) {
    match shape {
        Shape::Text(t) => {
            // Coalesce adjacent text like the parser would, so roundtrips
            // compare equal.
            if let Some(&last) = doc.children(parent).last() {
                if let NodeData::Literal { label, value } = doc.data_mut(last) {
                    if *label == natix_xml::LABEL_TEXT {
                        if let natix_xml::LiteralValue::String(s) = value {
                            s.push_str(t);
                            return;
                        }
                    }
                }
            }
            doc.add_child(parent, NodeData::text(t.clone()));
        }
        Shape::Element {
            tag,
            attrs,
            children,
        } => {
            let label = syms.intern_element(tag);
            let e = doc.add_child(parent, NodeData::Element(label));
            let mut seen = Vec::new();
            for (name, value) in attrs {
                if seen.contains(name) {
                    continue; // XML forbids duplicate attributes
                }
                seen.push(name.clone());
                let a = syms.intern_attribute(name);
                doc.add_child(e, NodeData::attribute(a, value.clone()));
            }
            for c in children {
                build(c, doc, e, syms);
            }
        }
    }
}

#[test]
fn serialize_parse_roundtrip() {
    for case in 0..96u64 {
        let mut g = Gen::new(case);
        let root_tag = tag(&mut g);
        let kids: Vec<Shape> = (0..g.below(6)).map(|_| shape(&mut g, 1)).collect();
        let mut syms = SymbolTable::new();
        let label = syms.intern_element(&root_tag);
        let mut doc = Document::new(NodeData::Element(label));
        for k in &kids {
            build(k, &mut doc, 0, &mut syms);
        }
        let xml = write_document(&doc, &syms, WriteOptions::compact()).unwrap();
        let reparsed = parse_document(&xml, &mut syms, ParserOptions::default())
            .unwrap_or_else(|e| panic!("failed to reparse {xml:?}: {e}"));
        assert!(reparsed == doc, "roundtrip diverged for {xml:?}");
        // And pretty output reparses to the same structure too.
        let pretty = write_document(&doc, &syms, WriteOptions::pretty()).unwrap();
        let reparsed2 = parse_document(&pretty, &mut syms, ParserOptions::default()).unwrap();
        assert!(reparsed2 == doc, "pretty roundtrip diverged for {pretty:?}");
    }
}

/// The parser must never panic: any byte soup yields Ok or Err.
#[test]
fn parser_total_on_arbitrary_input() {
    for case in 0..96u64 {
        let mut g = Gen::new(0xB17E ^ case);
        let len = g.below(200);
        let input: String = (0..len)
            .map(|_| {
                // Printable-ish chars plus markup punctuation and non-ASCII.
                const POOL: &[char] = &[
                    'a', 'b', 'z', 'A', 'Z', '0', '9', ' ', '\t', '\n', '<', '>', '&', ';', '"',
                    '\'', '/', '?', '!', '[', ']', '-', '=', 'é', '∞', '\u{7f}',
                ];
                POOL[g.below(POOL.len())]
            })
            .collect();
        let mut syms = SymbolTable::new();
        let _ = parse_document(&input, &mut syms, ParserOptions::default());
    }
}

/// Near-XML inputs (fragments with brackets and entities) also never panic.
#[test]
fn parser_total_on_markup_like_input() {
    const PARTS: &[&str] = &[
        "<a>",
        "</a>",
        "<a/>",
        "<!--x-->",
        "<![CDATA[y]]>",
        "&amp;",
        "&#65;",
        "&bogus;",
        "text",
        "<?pi d?>",
        "<!DOCTYPE a>",
        "<a b='c'>",
        "<",
        ">",
    ];
    for case in 0..96u64 {
        let mut g = Gen::new(0x3A9 ^ case);
        let input: String = (0..g.below(20))
            .map(|_| PARTS[g.below(PARTS.len())])
            .collect();
        let mut syms = SymbolTable::new();
        let _ = parse_document(&input, &mut syms, ParserOptions::default());
    }
}
