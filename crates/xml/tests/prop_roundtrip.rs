//! Property-based tests: random logical documents survive
//! serialise → parse → serialise unchanged, and the parser never panics on
//! arbitrary input.

use proptest::prelude::*;

use natix_xml::{
    parse_document, write_document, Document, NodeData, ParserOptions, SymbolTable, WriteOptions,
};

/// Strategy for tag names.
fn tag() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9_-]{0,8}".prop_map(|s| s)
}

/// Strategy for text content, including characters that need escaping.
/// Always contains at least one letter: whitespace-only text nodes are
/// dropped by the default parser options (by design), so they cannot
/// roundtrip and are out of scope here.
fn text() -> impl Strategy<Value = String> {
    (
        proptest::char::range('a', 'z'),
        proptest::collection::vec(
            prop_oneof![
                8 => proptest::char::range('a', 'z').prop_map(|c| c.to_string()),
                1 => Just(" ".to_string()),
                1 => prop_oneof![
                    Just("<".to_string()),
                    Just(">".to_string()),
                    Just("&".to_string()),
                    Just("\"".to_string()),
                    Just("é".to_string()),
                ],
            ],
            0..23,
        ),
    )
        .prop_map(|(first, v)| format!("{first}{}", v.concat()))
}

#[derive(Debug, Clone)]
enum Shape {
    Text(String),
    Element { tag: String, attrs: Vec<(String, String)>, children: Vec<Shape> },
}

fn shape() -> impl Strategy<Value = Shape> {
    let leaf = prop_oneof![
        3 => text().prop_map(Shape::Text),
        2 => (tag(), proptest::collection::vec((tag(), text()), 0..3)).prop_map(|(t, attrs)| {
            Shape::Element { tag: t, attrs, children: vec![] }
        }),
    ];
    leaf.prop_recursive(4, 64, 6, |inner| {
        (tag(), proptest::collection::vec((tag(), text()), 0..3),
         proptest::collection::vec(inner, 0..6))
            .prop_map(|(t, attrs, children)| Shape::Element { tag: t, attrs, children })
    })
}

fn build(shape: &Shape, doc: &mut Document, parent: u32, syms: &mut SymbolTable) {
    match shape {
        Shape::Text(t) => {
            // Coalesce adjacent text like the parser would, so roundtrips
            // compare equal.
            if let Some(&last) = doc.children(parent).last() {
                if let NodeData::Literal { label, value } = doc.data_mut(last) {
                    if *label == natix_xml::LABEL_TEXT {
                        if let natix_xml::LiteralValue::String(s) = value {
                            s.push_str(t);
                            return;
                        }
                    }
                }
            }
            doc.add_child(parent, NodeData::text(t.clone()));
        }
        Shape::Element { tag, attrs, children } => {
            let label = syms.intern_element(tag);
            let e = doc.add_child(parent, NodeData::Element(label));
            let mut seen = Vec::new();
            for (name, value) in attrs {
                if seen.contains(name) {
                    continue; // XML forbids duplicate attributes
                }
                seen.push(name.clone());
                let a = syms.intern_attribute(name);
                doc.add_child(e, NodeData::attribute(a, value.clone()));
            }
            for c in children {
                build(c, doc, e, syms);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn serialize_parse_roundtrip(root_tag in tag(), kids in proptest::collection::vec(shape(), 0..6)) {
        let mut syms = SymbolTable::new();
        let label = syms.intern_element(&root_tag);
        let mut doc = Document::new(NodeData::Element(label));
        for k in &kids {
            build(k, &mut doc, 0, &mut syms);
        }
        let xml = write_document(&doc, &syms, WriteOptions::compact()).unwrap();
        let reparsed = parse_document(&xml, &mut syms, ParserOptions::default())
            .unwrap_or_else(|e| panic!("failed to reparse {xml:?}: {e}"));
        prop_assert!(reparsed == doc, "roundtrip diverged for {xml:?}");
        // And pretty output reparses to the same structure too.
        let pretty = write_document(&doc, &syms, WriteOptions::pretty()).unwrap();
        let reparsed2 = parse_document(&pretty, &mut syms, ParserOptions::default()).unwrap();
        prop_assert!(reparsed2 == doc, "pretty roundtrip diverged for {pretty:?}");
    }

    /// The parser must never panic: any byte soup yields Ok or Err.
    #[test]
    fn parser_total_on_arbitrary_input(input in "\\PC*") {
        let mut syms = SymbolTable::new();
        let _ = parse_document(&input, &mut syms, ParserOptions::default());
    }

    /// Near-XML inputs (fragments with brackets and entities) also never
    /// panic.
    #[test]
    fn parser_total_on_markup_like_input(
        parts in proptest::collection::vec(prop_oneof![
            Just("<a>".to_string()),
            Just("</a>".to_string()),
            Just("<a/>".to_string()),
            Just("<!--x-->".to_string()),
            Just("<![CDATA[y]]>".to_string()),
            Just("&amp;".to_string()),
            Just("&#65;".to_string()),
            Just("&bogus;".to_string()),
            Just("text".to_string()),
            Just("<?pi d?>".to_string()),
            Just("<!DOCTYPE a>".to_string()),
            Just("<a b='c'>".to_string()),
            Just("<".to_string()),
            Just(">".to_string()),
        ], 0..20),
    ) {
        let input = parts.concat();
        let mut syms = SymbolTable::new();
        let _ = parse_document(&input, &mut syms, ParserOptions::default());
    }
}
