//! Document type definitions.
//!
//! §2.2: "the DTD is just a way of specifying the node alphabet ΣDTD.
//! Additionally, the DTD can place constraints on how node labels can be
//! combined." The schema manager keeps DTDs in the system catalog; the
//! document manager "checks schema consistency, called document validation
//! in the XML world" (§2.1); and the split matrix (§3.3) is indexed by the
//! DTD's label alphabet.
//!
//! Supported declarations: `<!ELEMENT>` with full content models (`EMPTY`,
//! `ANY`, mixed `(#PCDATA|a|b)*`, and children expressions with `,` / `|` /
//! `?` / `*` / `+`), `<!ATTLIST>`, and internal `<!ENTITY>` declarations
//! (recorded, not expanded). Validation matches an element's child-label
//! sequence against its content model with memoised backtracking.

use std::collections::HashMap;

use crate::error::{XmlError, XmlResult};

/// A parsed content model expression.
#[derive(Debug, Clone, PartialEq)]
pub enum ContentModel {
    /// `EMPTY`.
    Empty,
    /// `ANY`.
    Any,
    /// `(#PCDATA)` or `(#PCDATA | a | b)*` — text mixed with the listed
    /// elements in any order.
    Mixed(Vec<String>),
    /// A children expression.
    Children(ContentExpr),
}

/// Regular-expression-like children content.
#[derive(Debug, Clone, PartialEq)]
pub enum ContentExpr {
    /// An element name.
    Name(String),
    /// `(a, b, c)` — sequence.
    Seq(Vec<ContentExpr>),
    /// `(a | b | c)` — choice.
    Choice(Vec<ContentExpr>),
    /// `x?`
    Opt(Box<ContentExpr>),
    /// `x*`
    Star(Box<ContentExpr>),
    /// `x+`
    Plus(Box<ContentExpr>),
}

/// One `<!ATTLIST>` attribute definition.
#[derive(Debug, Clone, PartialEq)]
pub struct AttDef {
    pub name: String,
    /// Raw type (`CDATA`, `ID`, enumeration...).
    pub att_type: String,
    /// Raw default spec (`#REQUIRED`, `#IMPLIED`, a literal...).
    pub default: String,
}

/// A parsed DTD: the alphabet ΣDTD plus constraints.
#[derive(Debug, Clone, Default)]
pub struct Dtd {
    elements: Vec<(String, ContentModel)>,
    element_index: HashMap<String, usize>,
    attlists: HashMap<String, Vec<AttDef>>,
    entities: HashMap<String, String>,
}

impl Dtd {
    /// Parses DTD text (an internal subset or a standalone `.dtd` file).
    /// Unrecognised declarations are skipped.
    pub fn parse(text: &str) -> XmlResult<Dtd> {
        let mut dtd = Dtd::default();
        let bytes = text.as_bytes();
        let mut pos = 0;
        while pos < bytes.len() {
            if bytes[pos].is_ascii_whitespace() {
                pos += 1;
                continue;
            }
            if text[pos..].starts_with("<!--") {
                pos = text[pos..].find("-->").map(|p| pos + p + 3).ok_or(
                    XmlError::UnexpectedEof {
                        message: "DTD comment".into(),
                    },
                )?;
                continue;
            }
            if text[pos..].starts_with("<?") {
                pos =
                    text[pos..]
                        .find("?>")
                        .map(|p| pos + p + 2)
                        .ok_or(XmlError::UnexpectedEof {
                            message: "DTD PI".into(),
                        })?;
                continue;
            }
            if !text[pos..].starts_with("<!") {
                return Err(XmlError::Dtd {
                    offset: pos,
                    message: "expected a declaration".into(),
                });
            }
            let end = text[pos..]
                .find('>')
                .map(|p| pos + p)
                .ok_or(XmlError::UnexpectedEof {
                    message: "DTD declaration".into(),
                })?;
            let decl = &text[pos + 2..end];
            if let Some(rest) = decl.strip_prefix("ELEMENT") {
                let (name, model_text) = split_first_token(rest.trim());
                let model = parse_content_model(model_text.trim(), pos)?;
                dtd.add_element(name, model);
            } else if let Some(rest) = decl.strip_prefix("ATTLIST") {
                let (elem, defs_text) = split_first_token(rest.trim());
                let defs = parse_attdefs(defs_text.trim());
                dtd.attlists
                    .entry(elem.to_string())
                    .or_default()
                    .extend(defs);
            } else if let Some(rest) = decl.strip_prefix("ENTITY") {
                let (name, value_text) = split_first_token(rest.trim());
                let value = value_text.trim().trim_matches(|c| c == '"' || c == '\'');
                dtd.entities.insert(name.to_string(), value.to_string());
            }
            // NOTATION and anything else: skipped.
            pos = end + 1;
        }
        Ok(dtd)
    }

    fn add_element(&mut self, name: &str, model: ContentModel) {
        if let Some(&i) = self.element_index.get(name) {
            self.elements[i].1 = model;
        } else {
            self.element_index
                .insert(name.to_string(), self.elements.len());
            self.elements.push((name.to_string(), model));
        }
    }

    /// Element names in declaration order — the alphabet ΣDTD.
    pub fn element_names(&self) -> impl Iterator<Item = &str> + '_ {
        self.elements.iter().map(|(n, _)| n.as_str())
    }

    /// True if `name` is declared.
    pub fn declares_element(&self, name: &str) -> bool {
        self.element_index.contains_key(name)
    }

    /// The content model of `name`, if declared.
    pub fn content_model(&self, name: &str) -> Option<&ContentModel> {
        self.element_index.get(name).map(|&i| &self.elements[i].1)
    }

    /// The attribute definitions of `name`.
    pub fn attributes_of(&self, name: &str) -> &[AttDef] {
        self.attlists.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Recorded internal entity value.
    pub fn entity(&self, name: &str) -> Option<&str> {
        self.entities.get(name).map(String::as_str)
    }

    /// Number of declared elements.
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    /// Validates one element: `children` is the ordered list of child
    /// items, where `None` denotes a text node and `Some(name)` a child
    /// element. Returns `Ok(())` for undeclared elements (open-world, like
    /// most checkers when validation is partial).
    pub fn validate_element(&self, name: &str, children: &[Option<&str>]) -> XmlResult<()> {
        let Some(model) = self.content_model(name) else {
            return Ok(());
        };
        let ok = match model {
            ContentModel::Any => true,
            ContentModel::Empty => children.is_empty(),
            ContentModel::Mixed(allowed) => children.iter().all(|c| match c {
                None => true,
                Some(n) => allowed.iter().any(|a| a == n),
            }),
            ContentModel::Children(expr) => {
                let names: Option<Vec<&str>> = children.iter().copied().collect();
                match names {
                    None => false, // text where the model allows no #PCDATA
                    Some(seq) => matches_expr(expr, &seq),
                }
            }
        };
        if ok {
            Ok(())
        } else {
            Err(XmlError::Structure(format!(
                "element <{name}> violates its content model {model:?}"
            )))
        }
    }
}

fn split_first_token(s: &str) -> (&str, &str) {
    match s.find(|c: char| c.is_ascii_whitespace()) {
        Some(i) => (&s[..i], &s[i..]),
        None => (s, ""),
    }
}

fn parse_attdefs(mut s: &str) -> Vec<AttDef> {
    // Attribute definitions are triples: name type default. Enumerated
    // types are parenthesised and may contain spaces.
    let mut out = Vec::new();
    loop {
        s = s.trim_start();
        if s.is_empty() {
            return out;
        }
        let (name, rest) = split_first_token(s);
        let rest = rest.trim_start();
        let (att_type, rest) = if rest.starts_with('(') {
            match rest.find(')') {
                Some(i) => (&rest[..=i], &rest[i + 1..]),
                None => (rest, ""),
            }
        } else {
            split_first_token(rest)
        };
        let rest = rest.trim_start();
        let (default, rest) = if rest.starts_with('"') || rest.starts_with('\'') {
            let q = rest.as_bytes()[0] as char;
            match rest[1..].find(q) {
                Some(i) => (&rest[..i + 2], &rest[i + 2..]),
                None => (rest, ""),
            }
        } else if let Some(tail) = rest.strip_prefix("#FIXED") {
            // #FIXED "literal"
            let after = tail.trim_start();
            if after.starts_with('"') || after.starts_with('\'') {
                let q = after.as_bytes()[0] as char;
                match after[1..].find(q) {
                    Some(i) => {
                        let consumed = rest.len() - after.len() + i + 2;
                        (&rest[..consumed], &rest[consumed..])
                    }
                    None => (rest, ""),
                }
            } else {
                split_first_token(rest)
            }
        } else {
            split_first_token(rest)
        };
        if name.is_empty() || att_type.is_empty() {
            return out;
        }
        out.push(AttDef {
            name: name.to_string(),
            att_type: att_type.to_string(),
            default: default.to_string(),
        });
        s = rest;
    }
}

fn parse_content_model(s: &str, base: usize) -> XmlResult<ContentModel> {
    let s = s.trim();
    if s.eq_ignore_ascii_case("EMPTY") {
        return Ok(ContentModel::Empty);
    }
    if s.eq_ignore_ascii_case("ANY") {
        return Ok(ContentModel::Any);
    }
    if s.contains("#PCDATA") {
        // (#PCDATA) or (#PCDATA | a | b)*
        let inner = s
            .trim_start_matches('(')
            .trim_end_matches('*')
            .trim_end_matches(')')
            .trim_start();
        let mut names = Vec::new();
        for part in inner.split('|').skip(1) {
            let name = part.trim();
            if !name.is_empty() {
                names.push(name.to_string());
            }
        }
        return Ok(ContentModel::Mixed(names));
    }
    let mut p = ExprParser { s, pos: 0, base };
    let expr = p.parse_particle()?;
    p.skip_ws();
    if p.pos != s.len() {
        return Err(XmlError::Dtd {
            offset: base + p.pos,
            message: format!("trailing content-model text '{}'", &s[p.pos..]),
        });
    }
    Ok(ContentModel::Children(expr))
}

struct ExprParser<'a> {
    s: &'a str,
    pos: usize,
    base: usize,
}

impl ExprParser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.s.len() && self.s.as_bytes()[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn err(&self, m: &str) -> XmlError {
        XmlError::Dtd {
            offset: self.base + self.pos,
            message: m.to_string(),
        }
    }

    fn parse_particle(&mut self) -> XmlResult<ContentExpr> {
        self.skip_ws();
        let mut expr = if self.s[self.pos..].starts_with('(') {
            self.pos += 1;
            let first = self.parse_particle()?;
            self.skip_ws();
            let b = self.s.as_bytes().get(self.pos).copied();
            match b {
                Some(b',') | Some(b'|') => {
                    let sep = b.unwrap();
                    let mut items = vec![first];
                    while self.s.as_bytes().get(self.pos) == Some(&sep) {
                        self.pos += 1;
                        items.push(self.parse_particle()?);
                        self.skip_ws();
                    }
                    if self.s.as_bytes().get(self.pos) != Some(&b')') {
                        return Err(self.err("expected ')'"));
                    }
                    self.pos += 1;
                    if sep == b',' {
                        ContentExpr::Seq(items)
                    } else {
                        ContentExpr::Choice(items)
                    }
                }
                Some(b')') => {
                    self.pos += 1;
                    first
                }
                _ => return Err(self.err("expected ',', '|' or ')'")),
            }
        } else {
            let start = self.pos;
            while self.pos < self.s.len()
                && !matches!(
                    self.s.as_bytes()[self.pos],
                    b',' | b'|' | b')' | b'?' | b'*' | b'+'
                )
                && !self.s.as_bytes()[self.pos].is_ascii_whitespace()
            {
                self.pos += 1;
            }
            if start == self.pos {
                return Err(self.err("expected an element name"));
            }
            ContentExpr::Name(self.s[start..self.pos].to_string())
        };
        match self.s.as_bytes().get(self.pos) {
            Some(b'?') => {
                self.pos += 1;
                expr = ContentExpr::Opt(Box::new(expr));
            }
            Some(b'*') => {
                self.pos += 1;
                expr = ContentExpr::Star(Box::new(expr));
            }
            Some(b'+') => {
                self.pos += 1;
                expr = ContentExpr::Plus(Box::new(expr));
            }
            _ => {}
        }
        Ok(expr)
    }
}

/// True when `seq` (entirely) matches `expr`. Memoised backtracking over
/// (expression node, position) pairs; content models are tiny, so this is
/// plenty fast.
pub fn matches_expr(expr: &ContentExpr, seq: &[&str]) -> bool {
    fn go(expr: &ContentExpr, seq: &[&str], from: usize, out: &mut Vec<usize>) {
        match expr {
            ContentExpr::Name(n) => {
                if seq.get(from) == Some(&n.as_str()) {
                    out.push(from + 1);
                }
            }
            ContentExpr::Seq(items) => {
                let mut positions = vec![from];
                for item in items {
                    let mut next = Vec::new();
                    for &p in &positions {
                        go(item, seq, p, &mut next);
                    }
                    next.sort_unstable();
                    next.dedup();
                    positions = next;
                    if positions.is_empty() {
                        return;
                    }
                }
                out.extend(positions);
            }
            ContentExpr::Choice(items) => {
                for item in items {
                    go(item, seq, from, out);
                }
                out.sort_unstable();
                out.dedup();
            }
            ContentExpr::Opt(inner) => {
                out.push(from);
                go(inner, seq, from, out);
                out.sort_unstable();
                out.dedup();
            }
            ContentExpr::Star(inner) => {
                let mut seen = vec![from];
                let mut frontier = vec![from];
                while !frontier.is_empty() {
                    let mut next = Vec::new();
                    for &p in &frontier {
                        go(inner, seq, p, &mut next);
                    }
                    next.sort_unstable();
                    next.dedup();
                    next.retain(|p| !seen.contains(p));
                    seen.extend(next.iter().copied());
                    frontier = next;
                }
                out.extend(seen);
                out.sort_unstable();
                out.dedup();
            }
            ContentExpr::Plus(inner) => {
                let star = ContentExpr::Star(inner.clone());
                let mut first = Vec::new();
                go(inner, seq, from, &mut first);
                for p in first {
                    go(&star, seq, p, out);
                }
                out.sort_unstable();
                out.dedup();
            }
        }
    }
    let mut ends = Vec::new();
    go(expr, seq, 0, &mut ends);
    ends.contains(&seq.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    const PLAY_DTD: &str = r#"
        <!-- Trimmed version of Jon Bosak's play.dtd -->
        <!ELEMENT PLAY (TITLE, PERSONAE, ACT+)>
        <!ELEMENT TITLE (#PCDATA)>
        <!ELEMENT PERSONAE (TITLE, PERSONA+)>
        <!ELEMENT PERSONA (#PCDATA)>
        <!ELEMENT ACT (TITLE, SCENE+)>
        <!ELEMENT SCENE (TITLE, (SPEECH | STAGEDIR)+)>
        <!ELEMENT SPEECH (SPEAKER+, (LINE | STAGEDIR)+)>
        <!ELEMENT SPEAKER (#PCDATA)>
        <!ELEMENT LINE (#PCDATA | STAGEDIR)*>
        <!ELEMENT STAGEDIR (#PCDATA)>
        <!ATTLIST PLAY id ID #IMPLIED year CDATA "unknown">
        <!ENTITY amp2 "&#38;">
    "#;

    #[test]
    fn parses_alphabet() {
        let dtd = Dtd::parse(PLAY_DTD).unwrap();
        let names: Vec<&str> = dtd.element_names().collect();
        assert_eq!(
            names,
            vec![
                "PLAY", "TITLE", "PERSONAE", "PERSONA", "ACT", "SCENE", "SPEECH", "SPEAKER",
                "LINE", "STAGEDIR"
            ]
        );
        assert!(dtd.declares_element("SPEECH"));
        assert!(!dtd.declares_element("NOPE"));
    }

    #[test]
    fn content_models_parsed() {
        let dtd = Dtd::parse(PLAY_DTD).unwrap();
        assert_eq!(
            dtd.content_model("TITLE"),
            Some(&ContentModel::Mixed(vec![]))
        );
        assert_eq!(
            dtd.content_model("LINE"),
            Some(&ContentModel::Mixed(vec!["STAGEDIR".into()]))
        );
        assert!(matches!(
            dtd.content_model("PLAY"),
            Some(ContentModel::Children(_))
        ));
    }

    #[test]
    fn attlist_and_entity() {
        let dtd = Dtd::parse(PLAY_DTD).unwrap();
        let atts = dtd.attributes_of("PLAY");
        assert_eq!(atts.len(), 2);
        assert_eq!(atts[0].name, "id");
        assert_eq!(atts[0].att_type, "ID");
        assert_eq!(atts[0].default, "#IMPLIED");
        assert_eq!(atts[1].default, "\"unknown\"");
        assert_eq!(dtd.entity("amp2"), Some("&#38;"));
    }

    #[test]
    fn empty_and_any() {
        let dtd = Dtd::parse("<!ELEMENT br EMPTY><!ELEMENT blob ANY>").unwrap();
        assert_eq!(dtd.content_model("br"), Some(&ContentModel::Empty));
        assert_eq!(dtd.content_model("blob"), Some(&ContentModel::Any));
        assert!(dtd.validate_element("br", &[]).is_ok());
        assert!(dtd.validate_element("br", &[Some("x")]).is_err());
        assert!(dtd.validate_element("blob", &[Some("x"), None]).is_ok());
    }

    #[test]
    fn validate_sequences() {
        let dtd = Dtd::parse(PLAY_DTD).unwrap();
        // SPEECH = (SPEAKER+, (LINE | STAGEDIR)+)
        assert!(dtd
            .validate_element("SPEECH", &[Some("SPEAKER"), Some("LINE"), Some("LINE")])
            .is_ok());
        assert!(dtd
            .validate_element(
                "SPEECH",
                &[
                    Some("SPEAKER"),
                    Some("SPEAKER"),
                    Some("STAGEDIR"),
                    Some("LINE")
                ]
            )
            .is_ok());
        assert!(
            dtd.validate_element("SPEECH", &[Some("LINE")]).is_err(),
            "missing speaker"
        );
        assert!(
            dtd.validate_element("SPEECH", &[Some("SPEAKER")]).is_err(),
            "missing line"
        );
        assert!(
            dtd.validate_element("SPEECH", &[Some("SPEAKER"), None])
                .is_err(),
            "text not allowed in SPEECH"
        );
    }

    #[test]
    fn validate_mixed() {
        let dtd = Dtd::parse(PLAY_DTD).unwrap();
        assert!(dtd
            .validate_element("LINE", &[None, Some("STAGEDIR"), None])
            .is_ok());
        assert!(dtd.validate_element("LINE", &[Some("SPEAKER")]).is_err());
        assert!(dtd.validate_element("TITLE", &[None]).is_ok());
        assert!(
            dtd.validate_element("UNDECLARED", &[None, Some("x")])
                .is_ok(),
            "open world"
        );
    }

    #[test]
    fn nested_groups_with_occurrence() {
        let dtd = Dtd::parse("<!ELEMENT r ((a, b?)+, c*)>").unwrap();
        let ok: &[&[Option<&str>]] = &[
            &[Some("a")],
            &[Some("a"), Some("b")],
            &[Some("a"), Some("b"), Some("a"), Some("c"), Some("c")],
        ];
        for case in ok {
            assert!(dtd.validate_element("r", case).is_ok(), "{case:?}");
        }
        let bad: &[&[Option<&str>]] = &[&[], &[Some("b")], &[Some("a"), Some("c"), Some("a")]];
        for case in bad {
            assert!(dtd.validate_element("r", case).is_err(), "{case:?}");
        }
    }

    #[test]
    fn star_matcher_terminates_on_nullable_inner() {
        // (a?)* could loop forever in a naive matcher.
        let expr = ContentExpr::Star(Box::new(ContentExpr::Opt(Box::new(ContentExpr::Name(
            "a".into(),
        )))));
        assert!(matches_expr(&expr, &[]));
        assert!(matches_expr(&expr, &["a", "a"]));
        assert!(!matches_expr(&expr, &["b"]));
    }

    #[test]
    fn malformed_models_error() {
        assert!(Dtd::parse("<!ELEMENT r (a,>").is_err());
        assert!(Dtd::parse("<!ELEMENT r (a) junk>").is_err());
    }
}
