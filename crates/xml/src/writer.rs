//! Serialisation of logical trees back to XML text.
//!
//! The evaluation's Query 2 "recreates the textual representation of the
//! complete first speech in every scene" — i.e. the repository must be able
//! to turn any stored subtree back into markup. This module does it for
//! in-memory [`Document`]s; the repository layer streams the same format
//! straight out of physical records.

use crate::error::{XmlError, XmlResult};
use crate::escape::{escape_attr, escape_text};
use crate::symbols::{LabelKind, SymbolTable, LABEL_COMMENT, LABEL_PI, LABEL_TEXT};
use crate::tree::{Document, NodeData, NodeIdx};

/// Serialisation style.
#[derive(Debug, Clone, Copy)]
pub struct WriteOptions {
    /// Spaces per indentation level; `None` = no added whitespace.
    pub indent: Option<usize>,
    /// Emit `<?xml version="1.0"?>` first.
    pub xml_decl: bool,
}

impl WriteOptions {
    /// No whitespace, no declaration — roundtrip-stable form.
    pub fn compact() -> WriteOptions {
        WriteOptions {
            indent: None,
            xml_decl: false,
        }
    }

    /// Two-space indentation with declaration.
    pub fn pretty() -> WriteOptions {
        WriteOptions {
            indent: Some(2),
            xml_decl: true,
        }
    }
}

impl Default for WriteOptions {
    fn default() -> Self {
        WriteOptions::compact()
    }
}

/// Serialises a whole document.
pub fn write_document(
    doc: &Document,
    symbols: &SymbolTable,
    options: WriteOptions,
) -> XmlResult<String> {
    let mut out = String::new();
    if options.xml_decl {
        // No explicit newline: `indent` adds one before the root element.
        out.push_str("<?xml version=\"1.0\"?>");
    }
    write_subtree_into(doc, doc.root(), symbols, options, &mut out)?;
    Ok(out)
}

/// Serialises the subtree rooted at `node`.
pub fn write_subtree(
    doc: &Document,
    node: NodeIdx,
    symbols: &SymbolTable,
    options: WriteOptions,
) -> XmlResult<String> {
    let mut out = String::new();
    write_subtree_into(doc, node, symbols, options, &mut out)?;
    Ok(out)
}

fn write_subtree_into(
    doc: &Document,
    node: NodeIdx,
    symbols: &SymbolTable,
    options: WriteOptions,
    out: &mut String,
) -> XmlResult<()> {
    write_node(doc, node, symbols, options, 0, out)
}

fn indent(out: &mut String, options: WriteOptions, depth: usize) {
    if let Some(w) = options.indent {
        if !out.is_empty() {
            out.push('\n');
        }
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
}

fn write_node(
    doc: &Document,
    node: NodeIdx,
    symbols: &SymbolTable,
    options: WriteOptions,
    depth: usize,
    out: &mut String,
) -> XmlResult<()> {
    match doc.data(node) {
        NodeData::Element(label) => {
            let name = symbols.name(*label);
            indent(out, options, depth);
            out.push('<');
            out.push_str(name);
            // Leading attribute literals become attributes; any attribute
            // literal after content would be unrepresentable in XML.
            let kids = doc.children(node);
            let mut content_from = 0;
            for &k in kids {
                if let NodeData::Literal { label, value } = doc.data(k) {
                    if symbols.kind(*label) == LabelKind::Attribute {
                        out.push(' ');
                        out.push_str(symbols.name(*label));
                        out.push_str("=\"");
                        out.push_str(&escape_attr(&value.to_text()));
                        out.push('"');
                        content_from += 1;
                        continue;
                    }
                }
                break;
            }
            if kids[content_from..].iter().any(|&k| {
                matches!(doc.data(k), NodeData::Literal { label, .. }
                    if symbols.kind(*label) == LabelKind::Attribute)
            }) {
                return Err(XmlError::Structure(format!(
                    "element <{name}> has an attribute literal after content"
                )));
            }
            let content = &kids[content_from..];
            if content.is_empty() {
                out.push_str("/>");
                return Ok(());
            }
            out.push('>');
            // Mixed content (any text child) must stay inline: indentation
            // would inject whitespace into character data and break
            // parse/serialise roundtrips.
            let mixed = content.iter().any(|&k| {
                matches!(
                    doc.data(k),
                    NodeData::Literal {
                        label: LABEL_TEXT,
                        ..
                    }
                )
            });
            let child_options = if mixed {
                WriteOptions {
                    indent: None,
                    ..options
                }
            } else {
                options
            };
            for &k in content {
                write_node(doc, k, symbols, child_options, depth + 1, out)?;
            }
            if !mixed {
                indent(out, options, depth);
            }
            out.push_str("</");
            out.push_str(name);
            out.push('>');
            Ok(())
        }
        NodeData::Literal { label, value } => {
            match *label {
                LABEL_TEXT => out.push_str(&escape_text(&value.to_text())),
                LABEL_COMMENT => {
                    indent(out, options, depth);
                    out.push_str("<!--");
                    out.push_str(&value.to_text());
                    out.push_str("-->");
                }
                LABEL_PI => {
                    indent(out, options, depth);
                    out.push_str("<?");
                    out.push_str(&value.to_text());
                    out.push_str("?>");
                }
                other => {
                    // A free-standing attribute literal (serialised when a
                    // subtree is written on its own): render as element-ish
                    // name="value" pair is impossible; emit text form.
                    if symbols.kind(other) == LabelKind::Attribute {
                        return Err(XmlError::Structure(format!(
                            "cannot serialise detached attribute '{}'",
                            symbols.name(other)
                        )));
                    }
                    out.push_str(&escape_text(&value.to_text()));
                }
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::ParserOptions;
    use crate::tree::build_from_text;

    fn roundtrip(text: &str) -> String {
        let mut syms = SymbolTable::new();
        let doc = build_from_text(text, &mut syms, ParserOptions::default()).unwrap();
        write_document(&doc, &syms, WriteOptions::compact()).unwrap()
    }

    #[test]
    fn compact_roundtrips_exactly() {
        for text in [
            "<a/>",
            "<a>text</a>",
            "<a x=\"1\" y=\"2\"><b/>tail</a>",
            "<SPEECH><SPEAKER>OTHELLO</SPEAKER><LINE>Let me see your eyes;</LINE></SPEECH>",
            "<a><!--c--><?pi data?></a>",
        ] {
            assert_eq!(roundtrip(text), text);
        }
    }

    #[test]
    fn escaping_applied() {
        let out = roundtrip("<a x=\"&quot;q&quot;\">1 &lt; 2 &amp; 3</a>");
        assert_eq!(out, "<a x=\"&quot;q&quot;\">1 &lt; 2 &amp; 3</a>");
    }

    #[test]
    fn double_roundtrip_is_fixpoint() {
        let once = roundtrip("<a>\n  <b>x</b>  <b>y</b>\n</a>");
        let twice = roundtrip(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn pretty_printing_indents_elements_not_text() {
        let mut syms = SymbolTable::new();
        let doc = build_from_text(
            "<a><b>x</b><c><d/></c></a>",
            &mut syms,
            ParserOptions::default(),
        )
        .unwrap();
        let out = write_document(&doc, &syms, WriteOptions::pretty()).unwrap();
        assert!(out.starts_with("<?xml version=\"1.0\"?>\n<a>"));
        assert!(
            out.contains("\n  <b>x</b>"),
            "text content stays inline: {out}"
        );
        assert!(out.contains("\n    <d/>"));
        // Pretty output reparses to the same tree.
        let mut syms2 = SymbolTable::new();
        let doc2 = build_from_text(&out, &mut syms2, ParserOptions::default()).unwrap();
        assert_eq!(doc2.node_count(), doc.node_count());
    }

    #[test]
    fn subtree_serialisation() {
        let mut syms = SymbolTable::new();
        let doc = build_from_text(
            "<a><b i=\"1\">x</b><c/></a>",
            &mut syms,
            ParserOptions::default(),
        )
        .unwrap();
        let b = doc.children(doc.root())[0];
        let out = write_subtree(&doc, b, &syms, WriteOptions::compact()).unwrap();
        assert_eq!(out, "<b i=\"1\">x</b>");
    }

    #[test]
    fn detached_attribute_is_an_error() {
        let mut syms = SymbolTable::new();
        let attr = syms.intern_attribute("x");
        let doc = Document::new(NodeData::attribute(attr, "v"));
        assert!(write_document(&doc, &syms, WriteOptions::compact()).is_err());
    }
}
