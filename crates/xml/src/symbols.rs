//! The interned label alphabet ΣDTD.
//!
//! §2.2: non-leaf nodes are "labelled with a symbol taken from an alphabet
//! ΣDTD"; Appendix A stores labels as 2-byte indices into a node-type
//! table, so labels are `u16` everywhere. The table distinguishes element
//! names from attribute names (both can be called `id`, say) and reserves
//! built-in labels for constructs that XML carries besides elements.

use std::collections::HashMap;

/// A 2-byte label, matching the paper's type-table encoding (Appendix A).
pub type LabelId = u16;

/// Label 0: "no logical label" — scaffolding nodes (§2.3.3) carry it.
pub const LABEL_NONE: LabelId = 0;
/// Built-in label for text (character data) literals.
pub const LABEL_TEXT: LabelId = 1;
/// Built-in label for comment literals.
pub const LABEL_COMMENT: LabelId = 2;
/// Built-in label for processing-instruction literals.
pub const LABEL_PI: LabelId = 3;
/// First id handed out to user labels.
pub const FIRST_USER_LABEL: LabelId = 4;

/// What namespace a label lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LabelKind {
    /// Element (tag) name.
    Element,
    /// Attribute name.
    Attribute,
    /// One of the reserved built-ins.
    Builtin,
}

/// Bidirectional interner for the label alphabet. Lives in the schema
/// manager and is persisted with the repository catalog.
///
/// One name→id map per [`LabelKind`], so lookups take a borrowed `&str`
/// without allocating a key — concurrent parsers resolve every tag and
/// attribute name through the read-locked fast path, and an allocation
/// per event would dominate that path.
#[derive(Debug, Clone)]
pub struct SymbolTable {
    names: Vec<(LabelKind, String)>,
    elements: HashMap<String, LabelId>,
    attributes: HashMap<String, LabelId>,
    builtins: HashMap<String, LabelId>,
}

impl SymbolTable {
    /// Creates a table with the built-in labels pre-interned.
    pub fn new() -> SymbolTable {
        let mut t = SymbolTable {
            names: Vec::new(),
            elements: HashMap::new(),
            attributes: HashMap::new(),
            builtins: HashMap::new(),
        };
        // Order matters: ids must equal the LABEL_* constants.
        t.push(LabelKind::Builtin, "#none");
        t.push(LabelKind::Builtin, "#text");
        t.push(LabelKind::Builtin, "#comment");
        t.push(LabelKind::Builtin, "#pi");
        t
    }

    fn map_for(&self, kind: LabelKind) -> &HashMap<String, LabelId> {
        match kind {
            LabelKind::Element => &self.elements,
            LabelKind::Attribute => &self.attributes,
            LabelKind::Builtin => &self.builtins,
        }
    }

    fn push(&mut self, kind: LabelKind, name: &str) -> LabelId {
        let id = self.names.len() as LabelId;
        self.names.push((kind, name.to_string()));
        let map = match kind {
            LabelKind::Element => &mut self.elements,
            LabelKind::Attribute => &mut self.attributes,
            LabelKind::Builtin => &mut self.builtins,
        };
        map.insert(name.to_string(), id);
        id
    }

    /// Interns an element name.
    pub fn intern_element(&mut self, name: &str) -> LabelId {
        self.intern(LabelKind::Element, name)
    }

    /// Interns an attribute name.
    pub fn intern_attribute(&mut self, name: &str) -> LabelId {
        self.intern(LabelKind::Attribute, name)
    }

    /// Interns a name in the given namespace.
    pub fn intern(&mut self, kind: LabelKind, name: &str) -> LabelId {
        if let Some(&id) = self.map_for(kind).get(name) {
            return id;
        }
        assert!(
            self.names.len() < u16::MAX as usize,
            "label alphabet exhausted"
        );
        self.push(kind, name)
    }

    /// Looks up an existing label without interning (and without
    /// allocating — this is the concurrent parsers' fast path).
    pub fn lookup(&self, kind: LabelKind, name: &str) -> Option<LabelId> {
        self.map_for(kind).get(name).copied()
    }

    /// Looks up an element label.
    pub fn lookup_element(&self, name: &str) -> Option<LabelId> {
        self.lookup(LabelKind::Element, name)
    }

    /// The name of a label (panics on an unknown id — ids are never
    /// fabricated, they always come from this table).
    pub fn name(&self, id: LabelId) -> &str {
        &self.names[id as usize].1
    }

    /// The namespace of a label.
    pub fn kind(&self, id: LabelId) -> LabelKind {
        self.names[id as usize].0
    }

    /// Total number of labels, including built-ins.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Never true: built-ins are always present.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterates `(id, kind, name)` over all labels (catalog persistence).
    pub fn iter(&self) -> impl Iterator<Item = (LabelId, LabelKind, &str)> + '_ {
        self.names
            .iter()
            .enumerate()
            .map(|(i, (k, n))| (i as LabelId, *k, n.as_str()))
    }

    /// Rebuilds a table from persisted `(kind, name)` rows, which must
    /// start with the built-ins in canonical order (as produced by
    /// [`iter`](Self::iter)).
    pub fn from_rows(rows: &[(LabelKind, String)]) -> SymbolTable {
        let mut t = SymbolTable {
            names: Vec::new(),
            elements: HashMap::new(),
            attributes: HashMap::new(),
            builtins: HashMap::new(),
        };
        for (kind, name) in rows {
            t.push(*kind, name);
        }
        debug_assert!(t.names.len() >= FIRST_USER_LABEL as usize);
        t
    }
}

impl Default for SymbolTable {
    fn default() -> Self {
        SymbolTable::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_have_fixed_ids() {
        let t = SymbolTable::new();
        assert_eq!(t.name(LABEL_NONE), "#none");
        assert_eq!(t.name(LABEL_TEXT), "#text");
        assert_eq!(t.name(LABEL_COMMENT), "#comment");
        assert_eq!(t.name(LABEL_PI), "#pi");
        assert_eq!(t.len(), FIRST_USER_LABEL as usize);
    }

    #[test]
    fn interning_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern_element("SPEECH");
        let b = t.intern_element("SPEECH");
        assert_eq!(a, b);
        assert_eq!(t.name(a), "SPEECH");
        assert_eq!(t.kind(a), LabelKind::Element);
    }

    #[test]
    fn namespaces_are_separate() {
        let mut t = SymbolTable::new();
        let e = t.intern_element("id");
        let a = t.intern_attribute("id");
        assert_ne!(e, a);
        assert_eq!(t.lookup(LabelKind::Element, "id"), Some(e));
        assert_eq!(t.lookup(LabelKind::Attribute, "id"), Some(a));
        assert_eq!(t.lookup(LabelKind::Element, "nope"), None);
    }

    #[test]
    fn persistence_roundtrip() {
        let mut t = SymbolTable::new();
        t.intern_element("PLAY");
        t.intern_attribute("type");
        let rows: Vec<(LabelKind, String)> = t.iter().map(|(_, k, n)| (k, n.to_string())).collect();
        let t2 = SymbolTable::from_rows(&rows);
        assert_eq!(t2.len(), t.len());
        assert_eq!(t2.lookup_element("PLAY"), t.lookup_element("PLAY"));
        assert_eq!(t2.name(LABEL_TEXT), "#text");
    }
}
