//! XML entity escaping and unescaping.
//!
//! Handles the five predefined entities (`&lt; &gt; &amp; &apos; &quot;`)
//! and numeric character references (`&#10;`, `&#x1F600;`).

use crate::error::{XmlError, XmlResult};

/// Escapes text content: `&`, `<`, `>` are replaced. Borrow-preserving:
/// returns the input unchanged when nothing needs escaping.
pub fn escape_text(s: &str) -> std::borrow::Cow<'_, str> {
    escape_impl(s, false)
}

/// Escapes an attribute value for double-quoted output: additionally
/// replaces `"`.
pub fn escape_attr(s: &str) -> std::borrow::Cow<'_, str> {
    escape_impl(s, true)
}

fn escape_impl(s: &str, attr: bool) -> std::borrow::Cow<'_, str> {
    let needs = s
        .bytes()
        .any(|b| matches!(b, b'&' | b'<' | b'>') || (attr && b == b'"'));
    if !needs {
        return std::borrow::Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' if attr => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    std::borrow::Cow::Owned(out)
}

/// Expands entity and character references in `s`. `base_offset` is the
/// position of `s` in the whole input, for error reporting.
pub fn unescape(s: &str, base_offset: usize) -> XmlResult<String> {
    if !s.contains('&') {
        return Ok(s.to_string());
    }
    let bytes = s.as_bytes();
    let mut out = String::with_capacity(s.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'&' {
            // Copy the longest &-free run in one go.
            let start = i;
            while i < bytes.len() && bytes[i] != b'&' {
                i += 1;
            }
            out.push_str(&s[start..i]);
            continue;
        }
        let semi = s[i..]
            .find(';')
            .map(|p| i + p)
            .ok_or(XmlError::UnexpectedEof {
                message: "entity reference".into(),
            })?;
        let name = &s[i + 1..semi];
        match name {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "apos" => out.push('\''),
            "quot" => out.push('"'),
            _ if name.starts_with("#x") || name.starts_with("#X") => {
                let code =
                    u32::from_str_radix(&name[2..], 16).map_err(|_| XmlError::BadCharRef {
                        offset: base_offset + i,
                    })?;
                out.push(char::from_u32(code).ok_or(XmlError::BadCharRef {
                    offset: base_offset + i,
                })?);
            }
            _ if name.starts_with('#') => {
                let code = name[1..].parse::<u32>().map_err(|_| XmlError::BadCharRef {
                    offset: base_offset + i,
                })?;
                out.push(char::from_u32(code).ok_or(XmlError::BadCharRef {
                    offset: base_offset + i,
                })?);
            }
            _ => {
                return Err(XmlError::UnknownEntity {
                    offset: base_offset + i,
                    name: name.to_string(),
                })
            }
        }
        i = semi + 1;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_borrows_when_clean() {
        assert!(matches!(
            escape_text("plain text"),
            std::borrow::Cow::Borrowed(_)
        ));
        assert!(matches!(escape_text("a < b"), std::borrow::Cow::Owned(_)));
    }

    #[test]
    fn escape_text_replaces_specials() {
        assert_eq!(escape_text("a < b & c > d"), "a &lt; b &amp; c &gt; d");
        assert_eq!(
            escape_text(r#"say "hi""#),
            r#"say "hi""#,
            "quotes fine in text"
        );
    }

    #[test]
    fn escape_attr_also_quotes() {
        assert_eq!(
            escape_attr(r#"say "hi" & bye"#),
            "say &quot;hi&quot; &amp; bye"
        );
    }

    #[test]
    fn unescape_predefined() {
        assert_eq!(unescape("&lt;&gt;&amp;&apos;&quot;", 0).unwrap(), "<>&'\"");
    }

    #[test]
    fn unescape_char_refs() {
        assert_eq!(unescape("&#65;&#x42;&#x1F600;", 0).unwrap(), "AB😀");
    }

    #[test]
    fn unescape_errors() {
        assert!(matches!(
            unescape("&bogus;", 10),
            Err(XmlError::UnknownEntity { offset: 10, .. })
        ));
        assert!(matches!(
            unescape("&#xD800;", 0),
            Err(XmlError::BadCharRef { .. })
        ));
        assert!(matches!(
            unescape("&#notanum;", 0),
            Err(XmlError::BadCharRef { .. })
        ));
        assert!(matches!(
            unescape("&unterminated", 0),
            Err(XmlError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn roundtrip() {
        let original = "if a<b & c>d then \"quote\" 'apos'";
        let escaped = escape_attr(original);
        assert_eq!(unescape(&escaped, 0).unwrap(), original);
    }
}
