//! Error type for the XML substrate.

use std::fmt;

/// Errors raised while parsing or serialising XML.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// Syntax error at a byte offset with a human-readable reason.
    Syntax { offset: usize, message: String },
    /// End tag did not match the open element.
    MismatchedTag {
        offset: usize,
        expected: String,
        found: String,
    },
    /// Input ended inside a construct.
    UnexpectedEof { message: String },
    /// A numeric character reference was out of range / not a char.
    BadCharRef { offset: usize },
    /// An undefined (non-predefined) entity was referenced.
    UnknownEntity { offset: usize, name: String },
    /// Document-level structural error (e.g. two root elements).
    Structure(String),
    /// DTD-specific syntax problem.
    Dtd { offset: usize, message: String },
}

/// Convenience alias used throughout the XML crate.
pub type XmlResult<T> = Result<T, XmlError>;

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::Syntax { offset, message } => {
                write!(f, "XML syntax error at byte {offset}: {message}")
            }
            XmlError::MismatchedTag {
                offset,
                expected,
                found,
            } => write!(
                f,
                "mismatched end tag at byte {offset}: expected </{expected}>, found </{found}>"
            ),
            XmlError::UnexpectedEof { message } => write!(f, "unexpected end of input: {message}"),
            XmlError::BadCharRef { offset } => {
                write!(f, "invalid character reference at byte {offset}")
            }
            XmlError::UnknownEntity { offset, name } => {
                write!(f, "unknown entity &{name}; at byte {offset}")
            }
            XmlError::Structure(m) => write!(f, "document structure error: {m}"),
            XmlError::Dtd { offset, message } => {
                write!(f, "DTD error at byte {offset}: {message}")
            }
        }
    }
}

impl std::error::Error for XmlError {}
