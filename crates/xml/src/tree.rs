//! The logical data model: ordered labelled trees (§2.2).
//!
//! A [`Document`] is an arena of nodes. Inner nodes are elements labelled
//! from ΣDTD; leaves are [`LiteralValue`]s labelled with an attribute name
//! or one of the built-ins (`#text`, `#comment`, `#pi`). Attributes are
//! modelled as leading literal children of their element — exactly how the
//! physical layer stores them (Appendix A: the node-type table records "the
//! tag or attribute name for Facade objects").
//!
//! This in-memory form is used as (a) the parse result handed to the
//! repository for storage, (b) the result of reconstructing a stored
//! physical tree (§2.3.3: "Substituting all proxies by their respective
//! subtrees reconstructs the original data tree"), and (c) the oracle in
//! the test suite's equivalence checks.

use crate::error::{XmlError, XmlResult};
use crate::parser::{ParserOptions, PullParser, XmlEvent};
use crate::symbols::{LabelId, SymbolTable, LABEL_COMMENT, LABEL_PI, LABEL_TEXT};

/// Index of a node within its document arena.
pub type NodeIdx = u32;

/// Typed literal payloads. Appendix A: "Literals are typed, currently
/// either string literals, 8/16/32/64-Bit integer literals, float, or URI".
#[derive(Debug, Clone, PartialEq)]
pub enum LiteralValue {
    String(String),
    I8(i8),
    I16(i16),
    I32(i32),
    I64(i64),
    F64(f64),
    Uri(String),
}

impl LiteralValue {
    /// The textual form used when serialising to XML.
    pub fn to_text(&self) -> String {
        match self {
            LiteralValue::String(s) | LiteralValue::Uri(s) => s.clone(),
            LiteralValue::I8(v) => v.to_string(),
            LiteralValue::I16(v) => v.to_string(),
            LiteralValue::I32(v) => v.to_string(),
            LiteralValue::I64(v) => v.to_string(),
            LiteralValue::F64(v) => v.to_string(),
        }
    }

    /// Borrowed string content, if this is a string-ish literal.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            LiteralValue::String(s) | LiteralValue::Uri(s) => Some(s),
            _ => None,
        }
    }

    /// Approximate byte length of the value (used in size heuristics).
    pub fn byte_len(&self) -> usize {
        match self {
            LiteralValue::String(s) | LiteralValue::Uri(s) => s.len(),
            LiteralValue::I8(_) => 1,
            LiteralValue::I16(_) => 2,
            LiteralValue::I32(_) => 4,
            LiteralValue::I64(_) | LiteralValue::F64(_) => 8,
        }
    }
}

/// What a logical node is.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeData {
    /// Inner node labelled with an element name.
    Element(LabelId),
    /// Leaf node: a typed literal labelled with an attribute name or a
    /// built-in (`#text`, `#comment`, `#pi`).
    Literal { label: LabelId, value: LiteralValue },
}

impl NodeData {
    /// Convenience constructor for a text node.
    pub fn text(s: impl Into<String>) -> NodeData {
        NodeData::Literal {
            label: LABEL_TEXT,
            value: LiteralValue::String(s.into()),
        }
    }

    /// Convenience constructor for an attribute node.
    pub fn attribute(label: LabelId, value: impl Into<String>) -> NodeData {
        NodeData::Literal {
            label,
            value: LiteralValue::String(value.into()),
        }
    }

    /// The node's label (elements and literals both have one).
    pub fn label(&self) -> LabelId {
        match self {
            NodeData::Element(l) => *l,
            NodeData::Literal { label, .. } => *label,
        }
    }

    /// True for [`NodeData::Element`].
    pub fn is_element(&self) -> bool {
        matches!(self, NodeData::Element(_))
    }
}

#[derive(Debug, Clone)]
struct LNode {
    data: NodeData,
    parent: Option<NodeIdx>,
    children: Vec<NodeIdx>,
}

/// An ordered labelled tree.
#[derive(Debug, Clone)]
pub struct Document {
    nodes: Vec<LNode>,
    root: NodeIdx,
}

impl Document {
    /// Creates a document containing only a root node.
    pub fn new(root_data: NodeData) -> Document {
        Document {
            nodes: vec![LNode {
                data: root_data,
                parent: None,
                children: Vec::new(),
            }],
            root: 0,
        }
    }

    /// The root node.
    pub fn root(&self) -> NodeIdx {
        self.root
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The node's payload.
    pub fn data(&self, node: NodeIdx) -> &NodeData {
        &self.nodes[node as usize].data
    }

    /// Mutable access to a node's payload.
    pub fn data_mut(&mut self, node: NodeIdx) -> &mut NodeData {
        &mut self.nodes[node as usize].data
    }

    /// The node's parent (`None` for the root).
    pub fn parent(&self, node: NodeIdx) -> Option<NodeIdx> {
        self.nodes[node as usize].parent
    }

    /// The node's children in document order.
    pub fn children(&self, node: NodeIdx) -> &[NodeIdx] {
        &self.nodes[node as usize].children
    }

    /// Appends a child under `parent`.
    pub fn add_child(&mut self, parent: NodeIdx, data: NodeData) -> NodeIdx {
        let idx = self.nodes.len() as NodeIdx;
        self.nodes.push(LNode {
            data,
            parent: Some(parent),
            children: Vec::new(),
        });
        self.nodes[parent as usize].children.push(idx);
        idx
    }

    /// Inserts a child under `parent` at `position` (clamped to the end).
    pub fn insert_child(&mut self, parent: NodeIdx, position: usize, data: NodeData) -> NodeIdx {
        let idx = self.nodes.len() as NodeIdx;
        self.nodes.push(LNode {
            data,
            parent: Some(parent),
            children: Vec::new(),
        });
        let kids = &mut self.nodes[parent as usize].children;
        let pos = position.min(kids.len());
        kids.insert(pos, idx);
        idx
    }

    /// Detaches `node` (and its subtree) from its parent. The arena slots
    /// are not reclaimed; detached subtrees simply become unreachable.
    pub fn detach(&mut self, node: NodeIdx) {
        if let Some(p) = self.nodes[node as usize].parent.take() {
            self.nodes[p as usize].children.retain(|&c| c != node);
        }
    }

    /// Pre-order traversal from the root.
    pub fn pre_order(&self) -> PreOrder<'_> {
        PreOrder {
            doc: self,
            stack: vec![self.root],
        }
    }

    /// Pre-order traversal of the subtree rooted at `node`.
    pub fn pre_order_from(&self, node: NodeIdx) -> PreOrder<'_> {
        PreOrder {
            doc: self,
            stack: vec![node],
        }
    }

    /// Number of reachable nodes (equals [`node_count`](Self::node_count)
    /// unless subtrees were detached).
    pub fn reachable_count(&self) -> usize {
        self.pre_order().count()
    }

    /// Concatenated text content of the subtree at `node` (attribute and
    /// comment/PI literals excluded) — the XPath `string()` notion used by
    /// the paper's Query 2/3 ("recreates the textual representation").
    pub fn text_content(&self, node: NodeIdx) -> String {
        let mut out = String::new();
        for n in self.pre_order_from(node) {
            if let NodeData::Literal {
                label: LABEL_TEXT,
                value,
            } = self.data(n)
            {
                out.push_str(&value.to_text());
            }
        }
        out
    }

    /// Structural equality of two subtrees (labels, values, and order).
    pub fn subtree_eq(&self, a: NodeIdx, other: &Document, b: NodeIdx) -> bool {
        if self.data(a) != other.data(b) {
            return false;
        }
        let ka = self.children(a);
        let kb = other.children(b);
        ka.len() == kb.len()
            && ka
                .iter()
                .zip(kb.iter())
                .all(|(&ca, &cb)| self.subtree_eq(ca, other, cb))
    }

    /// First child element of `node` with the given label.
    pub fn first_child_element(&self, node: NodeIdx, label: LabelId) -> Option<NodeIdx> {
        self.children(node)
            .iter()
            .copied()
            .find(|&c| matches!(self.data(c), NodeData::Element(l) if *l == label))
    }
}

impl PartialEq for Document {
    fn eq(&self, other: &Self) -> bool {
        self.subtree_eq(self.root, other, other.root)
    }
}

/// Iterator over a subtree in pre-order.
pub struct PreOrder<'a> {
    doc: &'a Document,
    stack: Vec<NodeIdx>,
}

impl Iterator for PreOrder<'_> {
    type Item = NodeIdx;

    fn next(&mut self) -> Option<NodeIdx> {
        let node = self.stack.pop()?;
        let kids = self.doc.children(node);
        self.stack.extend(kids.iter().rev());
        Some(node)
    }
}

/// Builds a [`Document`] from XML text by driving the pull parser.
/// Adjacent text events (e.g. CDATA next to character data) are coalesced
/// so that parse/serialise roundtrips are stable.
pub fn build_from_text(
    text: &str,
    symbols: &mut SymbolTable,
    options: ParserOptions,
) -> XmlResult<Document> {
    let mut parser = PullParser::new(text, options);
    let mut doc: Option<Document> = None;
    let mut stack: Vec<NodeIdx> = Vec::new();
    while let Some(event) = parser.next_event()? {
        match event {
            XmlEvent::StartElement { name, attrs } => {
                let label = symbols.intern_element(name);
                let node = match (&mut doc, stack.last()) {
                    (None, _) => {
                        doc = Some(Document::new(NodeData::Element(label)));
                        0
                    }
                    (Some(d), Some(&parent)) => d.add_child(parent, NodeData::Element(label)),
                    (Some(_), None) => {
                        return Err(XmlError::Structure("multiple root elements".into()))
                    }
                };
                let d = doc.as_mut().expect("document exists after root");
                for (attr_name, value) in attrs {
                    let alabel = symbols.intern_attribute(attr_name);
                    d.add_child(node, NodeData::attribute(alabel, value));
                }
                stack.push(node);
            }
            XmlEvent::EndElement { .. } => {
                stack.pop();
            }
            XmlEvent::Text(t) => {
                let (Some(d), Some(&parent)) = (&mut doc, stack.last()) else {
                    return Err(XmlError::Structure("text outside the root element".into()));
                };
                // Coalesce with a trailing text sibling.
                if let Some(&last) = d.children(parent).last() {
                    if let NodeData::Literal {
                        label: LABEL_TEXT,
                        value: LiteralValue::String(s),
                    } = d.data_mut(last)
                    {
                        s.push_str(&t);
                        continue;
                    }
                }
                d.add_child(parent, NodeData::text(t));
            }
            XmlEvent::Comment(c) => {
                if let (Some(d), Some(&parent)) = (&mut doc, stack.last()) {
                    d.add_child(
                        parent,
                        NodeData::Literal {
                            label: LABEL_COMMENT,
                            value: LiteralValue::String(c.to_string()),
                        },
                    );
                }
            }
            XmlEvent::Pi { target, data } => {
                if let (Some(d), Some(&parent)) = (&mut doc, stack.last()) {
                    let body = if data.is_empty() {
                        target.to_string()
                    } else {
                        format!("{target} {data}")
                    };
                    d.add_child(
                        parent,
                        NodeData::Literal {
                            label: LABEL_PI,
                            value: LiteralValue::String(body),
                        },
                    );
                }
            }
            XmlEvent::Doctype { .. } => {} // schema handling is the caller's business
        }
    }
    doc.ok_or_else(|| XmlError::Structure("empty document".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::LabelKind;

    fn parse(text: &str) -> (Document, SymbolTable) {
        let mut syms = SymbolTable::new();
        let doc = build_from_text(text, &mut syms, ParserOptions::default()).unwrap();
        (doc, syms)
    }

    #[test]
    fn figure_2_tree_shape() {
        // The paper's figure 2: SPEECH with SPEAKER and two LINEs.
        let (doc, syms) = parse(
            "<SPEECH><SPEAKER>OTHELLO</SPEAKER><LINE>Let me see your eyes;</LINE>\
             <LINE>Look in my face.</LINE></SPEECH>",
        );
        let root = doc.root();
        assert_eq!(
            doc.data(root).label(),
            syms.lookup_element("SPEECH").unwrap()
        );
        assert_eq!(doc.children(root).len(), 3);
        // 4 elements + 3 text leaves.
        assert_eq!(doc.node_count(), 7);
        assert_eq!(
            doc.text_content(root),
            "OTHELLOLet me see your eyes;Look in my face."
        );
    }

    #[test]
    fn attributes_become_leading_literal_children() {
        let (doc, syms) = parse(r#"<PLAY id="othello" year="1604"><TITLE>Othello</TITLE></PLAY>"#);
        let kids = doc.children(doc.root());
        assert_eq!(kids.len(), 3);
        let NodeData::Literal { label, value } = doc.data(kids[0]) else {
            panic!()
        };
        assert_eq!(*label, syms.lookup(LabelKind::Attribute, "id").unwrap());
        assert_eq!(value.as_str(), Some("othello"));
        assert!(doc.data(kids[2]).is_element());
    }

    #[test]
    fn pre_order_is_document_order() {
        let (doc, syms) = parse("<a><b><c/></b><d/></a>");
        let names: Vec<&str> = doc
            .pre_order()
            .map(|n| syms.name(doc.data(n).label()))
            .collect();
        assert_eq!(names, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn insert_child_positions() {
        let mut doc = Document::new(NodeData::Element(10));
        let a = doc.add_child(0, NodeData::text("a"));
        let c = doc.add_child(0, NodeData::text("c"));
        let b = doc.insert_child(0, 1, NodeData::text("b"));
        assert_eq!(doc.children(0), &[a, b, c]);
        let z = doc.insert_child(0, 99, NodeData::text("z"));
        assert_eq!(doc.children(0).last(), Some(&z));
    }

    #[test]
    fn detach_removes_subtree_from_traversal() {
        let (mut doc, _) = parse("<a><b><c/></b><d/></a>");
        let b = doc.children(doc.root())[0];
        doc.detach(b);
        assert_eq!(doc.reachable_count(), 2);
        assert_eq!(doc.parent(b), None);
    }

    #[test]
    fn structural_equality() {
        let (d1, _) = parse("<a><b>x</b></a>");
        let (d2, _) = parse("<a><b>x</b></a>");
        let (d3, _) = parse("<a><b>y</b></a>");
        let (d4, _) = parse("<a><b>x</b><b>x</b></a>");
        assert_eq!(d1, d2);
        assert_ne!(d1, d3);
        assert_ne!(d1, d4);
    }

    #[test]
    fn adjacent_text_coalesced() {
        let (doc, _) = parse("<a>one <![CDATA[< two]]> three</a>");
        assert_eq!(doc.children(doc.root()).len(), 1);
        assert_eq!(doc.text_content(doc.root()), "one < two three");
    }

    #[test]
    fn comments_and_pis_are_literal_leaves() {
        let (doc, _) = parse("<a><!--note--><?style css?></a>");
        let kids = doc.children(doc.root());
        assert_eq!(doc.data(kids[0]).label(), LABEL_COMMENT);
        assert_eq!(doc.data(kids[1]).label(), LABEL_PI);
        let NodeData::Literal { value, .. } = doc.data(kids[1]) else {
            panic!()
        };
        assert_eq!(value.as_str(), Some("style css"));
    }

    #[test]
    fn typed_literals() {
        let mut doc = Document::new(NodeData::Element(5));
        doc.add_child(
            0,
            NodeData::Literal {
                label: LABEL_TEXT,
                value: LiteralValue::I32(-42),
            },
        );
        doc.add_child(
            0,
            NodeData::Literal {
                label: LABEL_TEXT,
                value: LiteralValue::F64(2.5),
            },
        );
        let texts = doc.text_content(0);
        assert_eq!(texts, "-422.5");
        assert_eq!(LiteralValue::I64(1).byte_len(), 8);
        assert_eq!(LiteralValue::Uri("ab".into()).byte_len(), 2);
    }
}
