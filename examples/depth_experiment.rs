//! Depth-aware packing demo: record-tree heights on deeply nested
//! documents, bulkloaded vs the per-node oracle, across document shapes
//! and page sizes.
//!
//! ```sh
//! cargo run --release --example depth_experiment
//! ```
//!
//! The bulkloader spills the open spine of a deep document across
//! records; depth-aware packing reserves a single continuation
//! placeholder per spilled piece and serves late children from
//! separator-style continuation groups, so the record tree stays flat
//! (height tracking fanout) instead of growing with the document depth.

use natix::{Repository, RepositoryOptions};
use natix_corpus::{generate_deep, DeepConfig};
use natix_tree::SplitMatrix;
use natix_xml::{Document, NodeData, SymbolTable};

fn compare(name: &str, syms: &SymbolTable, doc: &Document, page: usize) {
    let mk = || {
        let r = Repository::create_in_memory(RepositoryOptions {
            page_size: page,
            matrix: SplitMatrix::all_other(),
            ..RepositoryOptions::default()
        })
        .unwrap();
        *r.symbols_mut() = syms.clone();
        r
    };
    let bulk = mk();
    bulk.put_document("d", doc).unwrap();
    let oracle = mk();
    oracle.put_document_per_node("d", doc).unwrap();
    assert_eq!(bulk.get_xml("d").unwrap(), oracle.get_xml("d").unwrap());
    let bs = bulk.physical_stats("d").unwrap();
    let os = oracle.physical_stats("d").unwrap();
    println!(
        "{name:<28} page {page:5}: bulk height {:4} ({:5} records) | \
         per-node height {:4} ({:5} records) | ratio {:.2}",
        bs.record_depth,
        bs.records,
        os.record_depth,
        os.records,
        bs.record_depth as f64 / os.record_depth as f64
    );
}

fn main() {
    // Pure chain: the open spine is all there is.
    let mut syms = SymbolTable::new();
    let a = syms.intern_element("a");
    let mut chain = Document::new(NodeData::Element(a));
    let mut cur = chain.root();
    for _ in 0..3000 {
        cur = chain.add_child(cur, NodeData::Element(a));
    }
    chain.add_child(cur, NodeData::text("bottom"));
    for page in [512usize, 2048, 8192] {
        compare("pure chain (3000)", &syms, &chain, page);
    }

    // The deep corpus: payloads, sidecars and late stragglers per level.
    let mut syms = SymbolTable::new();
    let deep = generate_deep(
        &DeepConfig {
            depth: 3000,
            ..DeepConfig::paper()
        },
        &mut syms,
    );
    for page in [512usize, 2048, 8192] {
        compare("deep corpus (3000)", &syms, &deep, page);
    }
}
