//! Quickstart: store, query, update and retrieve an XML document.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use natix::{Repository, RepositoryOptions};
use natix_tree::InsertPos;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A fresh in-memory repository; `Repository::create_file` persists to
    // a single file instead.
    let repo = Repository::create_in_memory(RepositoryOptions::default())?;

    // 1. Store a document (the paper's figure-2 example).
    repo.put_xml(
        "othello-fragment",
        "<SPEECH><SPEAKER>OTHELLO</SPEAKER>\
         <LINE>Let me see your eyes;</LINE>\
         <LINE>Look in my face.</LINE></SPEECH>",
    )?;

    // 2. Retrieve it — byte-identical round trip.
    println!("stored:   {}", repo.get_xml("othello-fragment")?);

    // 3. Navigate on node granularity.
    let doc = repo.doc_id("othello-fragment")?;
    let root = repo.root(doc)?;
    let children = repo.children(doc, root)?;
    println!("root has {} children:", children.len());
    for &c in &children {
        let s = repo.node_summary(doc, c)?;
        println!("  <{}> {:?}", s.label, repo.text_content(doc, c)?);
    }

    // 4. Query with a path expression.
    let lines = repo.query("othello-fragment", "/SPEECH/LINE")?;
    println!("query /SPEECH/LINE matched {} nodes", lines.len());

    // 5. Update: append another line, node-granular.
    let line3 = repo.insert_element(doc, root, InsertPos::Last, "LINE")?;
    repo.insert_text(doc, line3, InsertPos::Last, "Speak of me as I am;")?;
    println!("updated:  {}", repo.get_xml("othello-fragment")?);

    // 6. Inspect the physical layout (records, proxies, scaffolding).
    let stats = repo.physical_stats("othello-fragment")?;
    println!(
        "physical: {} record(s), {} facade node(s), {} prox(ies), depth {}",
        stats.records, stats.facade_nodes, stats.proxies, stats.record_depth
    );
    Ok(())
}
