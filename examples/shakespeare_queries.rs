//! Loads a slice of the synthetic Shakespeare corpus and runs the paper's
//! three evaluation queries (§4.3), with and without a label index.
//!
//! ```sh
//! cargo run --release --example shakespeare_queries
//! ```

use natix::{LabelIndex, Repository, RepositoryOptions};
use natix_corpus::{generate_corpus, CorpusConfig};
use natix_xml::WriteOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let repo = Repository::create_in_memory(RepositoryOptions::paper(8192))?;

    // Load a reduced corpus (8 plays) — `CorpusConfig::paper()` generates
    // the full ≈320k-node collection.
    let cfg = CorpusConfig {
        plays: 8,
        scale: 0.4,
        ..CorpusConfig::paper()
    };
    let plays = generate_corpus(&cfg, &mut repo.symbols_mut());
    let mut bytes = 0usize;
    for play in &plays {
        let xml = natix_xml::write_document(&play.doc, &repo.symbols(), WriteOptions::compact())?;
        bytes += xml.len();
        repo.put_document(&play.name, &play.doc)?;
    }
    println!("loaded {} plays ({} KB of XML)", plays.len(), bytes / 1024);

    // Query 1: all speakers in act 3, scene 2 of every play.
    repo.clear_buffer()?;
    let before = repo.io_stats().snapshot();
    let mut speakers = 0usize;
    for play in &plays {
        let hits = repo.query(&play.name, "/PLAY/ACT[3]/SCENE[2]//SPEAKER")?;
        speakers += hits.len();
    }
    let d = repo.io_stats().snapshot().since(&before);
    println!(
        "Q1 (/PLAY/ACT[3]/SCENE[2]//SPEAKER): {speakers} speakers, \
         {:.1} ms simulated disk, {} page reads",
        d.sim_disk_ms(),
        d.physical_reads
    );

    // Query 2: recreate the text of the first speech of every scene.
    repo.clear_buffer()?;
    let before = repo.io_stats().snapshot();
    let mut total_len = 0usize;
    for play in &plays {
        let id = repo.doc_id(&play.name)?;
        for speech in repo.query(&play.name, "/PLAY/ACT/SCENE/SPEECH[1]")? {
            total_len += repo.serialize_node(id, speech)?.len();
        }
    }
    let d = repo.io_stats().snapshot().since(&before);
    println!(
        "Q2 (first speech per scene): {} KB of markup recreated, {:.1} ms simulated disk",
        total_len / 1024,
        d.sim_disk_ms()
    );

    // Query 3: the opening speech of each play.
    repo.clear_buffer()?;
    let before = repo.io_stats().snapshot();
    for play in &plays {
        let id = repo.doc_id(&play.name)?;
        for speech in repo.query(&play.name, "/PLAY/ACT[1]/SCENE[1]/SPEECH[1]")? {
            let text = repo.text_content(id, speech)?;
            println!("  {} opens: {:.50}…", play.title, text);
        }
    }
    let d = repo.io_stats().snapshot().since(&before);
    println!(
        "Q3 (opening speech per play): {:.1} ms simulated disk",
        d.sim_disk_ms()
    );

    // Ablation: Query-1-style lookup through the label index instead of
    // navigation (index structures are the paper's §6 future work).
    let mut index = LabelIndex::create(&repo)?;
    for play in &plays {
        index.index_document(&repo, &play.name)?;
    }
    repo.clear_buffer()?;
    let before = repo.io_stats().snapshot();
    let mut via_index = 0usize;
    for play in &plays {
        via_index += index.lookup(&repo, &play.name, "SPEAKER")?.len();
    }
    let d = repo.io_stats().snapshot().since(&before);
    println!(
        "index ablation: {via_index} SPEAKERs via B+-tree, {:.1} ms simulated disk, \
         {} page reads",
        d.sim_disk_ms(),
        d.physical_reads
    );
    Ok(())
}
