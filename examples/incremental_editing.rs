//! Node-granular editing under churn: the dynamic behaviour of §3 — records
//! split as subtrees grow and (with the merge extension) coalesce again as
//! they shrink, while logical node ids stay stable throughout.
//!
//! Since the record-level-versioning refactor the whole edit API takes
//! `&self`: this example drives the growth phase from the main thread
//! while a concurrent reader thread queries the very same document
//! through shared references — each query observes a consistent snapshot
//! of the notebook at some instant between two edits, never a torn one.
//!
//! ```sh
//! cargo run --release --example incremental_editing
//! ```

use std::sync::atomic::{AtomicBool, Ordering};

use natix::{PathQuery, Repository, RepositoryOptions, TreeConfig};
use natix_tree::InsertPos;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let repo = Repository::create_in_memory(RepositoryOptions {
        page_size: 2048,
        tree_config: TreeConfig {
            merge_enabled: true,
            ..TreeConfig::paper()
        },
        ..RepositoryOptions::default()
    })?;

    let doc = repo.create_document("notebook", "NOTEBOOK")?;
    let root = repo.root(doc)?;

    // Grow: add 300 entries — watch the record count climb as splits keep
    // every record under a page. A reader races the growth through
    // `&Repository`, counting entries with snapshot queries: counts only
    // ever move forward, and every observed state is a whole number of
    // edits.
    let growth_done = AtomicBool::new(false);
    let mut entries = Vec::new();
    std::thread::scope(|s| -> Result<(), natix::NatixError> {
        let repo = &repo;
        let growth_done = &growth_done;
        let reader = s.spawn(move || {
            let q = PathQuery::parse("//ENTRY").unwrap();
            let mut last = 0usize;
            let mut observations = 0u32;
            while !growth_done.load(Ordering::Acquire) {
                let seen = repo.query_content(doc, &q).unwrap().len();
                assert!(seen >= last, "snapshot counts must be monotonic");
                last = seen;
                observations += 1;
            }
            (last, observations)
        });
        for i in 0..300 {
            let entry = repo.insert_element(doc, root, InsertPos::Last, "ENTRY")?;
            repo.insert_text(
                doc,
                entry,
                InsertPos::Last,
                &format!("note {i}: {}", "lorem ipsum ".repeat(1 + i % 5)),
            )?;
            entries.push(entry);
            if i % 100 == 99 {
                let s = repo.physical_stats("notebook")?;
                println!(
                    "after {:>3} inserts: {:>3} records, {:>4} facade nodes, depth {}",
                    i + 1,
                    s.records,
                    s.facade_nodes,
                    s.record_depth
                );
            }
        }
        growth_done.store(true, Ordering::Release);
        let (last_seen, observations) = reader.join().expect("reader");
        println!(
            "concurrent reader: {observations} snapshot queries while editing, \
             last count {last_seen}/300"
        );
        Ok(())
    })?;

    // Edit in the middle: ids remain valid across the splits that happened
    // after they were handed out.
    let text_node = repo.children(doc, entries[150])?[0];
    repo.update_text(
        doc,
        text_node,
        "rewritten in place — logical ids survive physical reorganisation",
    )?;
    println!("entry 150 now: {}", repo.text_content(doc, entries[150])?);

    // Shrink: delete 90% of the entries; with merging enabled, records are
    // absorbed back into their parents ("clustered nodes can become records
    // of their own or again be merged into clusters", §1).
    for (i, &e) in entries.iter().enumerate() {
        if i % 10 != 0 {
            repo.delete_node(doc, e)?;
        }
    }
    let s = repo.physical_stats("notebook")?;
    println!(
        "after deleting 270 entries: {} records, {} facade nodes (merge extension at work)",
        s.records, s.facade_nodes
    );

    // Every tenth entry survived, still addressable.
    let survivors = repo.children(doc, root)?;
    println!(
        "{} entries survive; first reads: {}",
        survivors.len(),
        repo.text_content(doc, survivors[0])?
    );

    // Persisting and re-opening would go through the XML system catalog —
    // see `Repository::create_file` / `checkpoint` / `open_file`.
    Ok(())
}
