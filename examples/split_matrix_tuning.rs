//! The split matrix (§3.3) as a tuning instrument.
//!
//! Stores the same document under four configurations and prints the
//! resulting physical layouts:
//!
//! * native 1:n (all *other*) — the algorithm decides freely;
//! * 1:1 emulation (all 0) — POET/Excelon/LORE-style record per node;
//! * SPEAKER pinned to SPEECH (∞) — navigation-friendly clustering;
//! * SPEECH forced standalone (0) — "collect some kinds of information in
//!   their own physical database area".
//!
//! ```sh
//! cargo run --release --example split_matrix_tuning
//! ```

use natix::{Repository, RepositoryOptions, SplitBehaviour, SplitMatrix};
use natix_corpus::{generate_play, CorpusConfig};

fn show(tag: &str, repo: &Repository, name: &str) -> Result<(), Box<dyn std::error::Error>> {
    let s = repo.physical_stats(name)?;
    println!(
        "{tag:<28} records {:>5}  proxies {:>5}  helpers {:>4}  bytes {:>8}  depth {}",
        s.records, s.proxies, s.scaffolding_aggregates, s.record_bytes, s.record_depth
    );
    Ok(())
}

fn build(matrix: SplitMatrix, tune: impl FnOnce(&mut Repository)) -> Repository {
    let mut repo = Repository::create_in_memory(RepositoryOptions {
        page_size: 4096,
        matrix,
        ..RepositoryOptions::default()
    })
    .expect("create repository");
    tune(&mut repo);
    let cfg = CorpusConfig {
        scale: 0.5,
        ..CorpusConfig::paper()
    };
    let play = generate_play(&cfg, 0, &mut repo.symbols_mut());
    repo.put_document("play", &play.doc).expect("store play");
    repo
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("one mid-size play, 4 KB pages, four split-matrix configurations:\n");

    let native = build(SplitMatrix::all_other(), |_| {});
    show("native 1:n (all other)", &native, "play")?;

    let one2one = build(SplitMatrix::all_standalone(), |_| {});
    show("1:1 emulation (all 0)", &one2one, "play")?;

    let pinned = build(SplitMatrix::all_other(), |repo| {
        repo.set_matrix_rule("SPEECH", "SPEAKER", SplitBehaviour::KeepWithParent);
        repo.set_matrix_rule("SPEECH", "LINE", SplitBehaviour::KeepWithParent);
    });
    show("SPEAKER,LINE pinned (inf)", &pinned, "play")?;

    let standalone_speech = build(SplitMatrix::all_other(), |repo| {
        repo.set_matrix_rule("SCENE", "SPEECH", SplitBehaviour::Standalone);
    });
    show("SPEECH standalone (0)", &standalone_speech, "play")?;

    println!(
        "\nAll four store the identical logical document; only the physical\n\
         clustering differs (the paper's §5 observation that other systems'\n\
         formats are instances of one parameterised algorithm)."
    );
    // Prove it: identical serialisations.
    let a = native.get_xml("play")?;
    for repo in [&one2one, &pinned, &standalone_speech] {
        assert_eq!(a, repo.get_xml("play")?);
    }
    println!("serialisation equality across configurations: OK");
    Ok(())
}
