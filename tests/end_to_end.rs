//! End-to-end integration tests across all crates: corpus → repository →
//! queries → persistence → re-open.

use natix::{Repository, RepositoryOptions, SplitBehaviour, SplitMatrix};
use natix_corpus::{generate_corpus, generate_play, CorpusConfig};
use natix_tree::InsertPos;
use natix_xml::WriteOptions;

fn tiny_corpus() -> CorpusConfig {
    CorpusConfig {
        plays: 3,
        scale: 0.12,
        ..CorpusConfig::tiny()
    }
}

#[test]
fn corpus_roundtrips_through_repository() {
    for page_size in [2048usize, 8192] {
        let repo = Repository::create_in_memory(RepositoryOptions {
            page_size,
            ..Default::default()
        })
        .unwrap();
        let plays = generate_corpus(&tiny_corpus(), &mut repo.symbols_mut());
        for play in &plays {
            repo.put_document(&play.name, &play.doc).unwrap();
        }
        for play in &plays {
            let expected =
                natix_xml::write_document(&play.doc, &repo.symbols(), WriteOptions::compact())
                    .unwrap();
            assert_eq!(
                repo.get_xml(&play.name).unwrap(),
                expected,
                "page {page_size}"
            );
            repo.physical_stats(&play.name).unwrap();
        }
    }
}

#[test]
fn corpus_roundtrips_in_one_to_one_mode() {
    let repo = Repository::create_in_memory(RepositoryOptions {
        page_size: 4096,
        matrix: SplitMatrix::all_standalone(),
        ..Default::default()
    })
    .unwrap();
    let play = generate_play(&tiny_corpus(), 1, &mut repo.symbols_mut());
    repo.put_document("p", &play.doc).unwrap();
    let expected =
        natix_xml::write_document(&play.doc, &repo.symbols(), WriteOptions::compact()).unwrap();
    assert_eq!(repo.get_xml("p").unwrap(), expected);
    let stats = repo.physical_stats("p").unwrap();
    assert_eq!(
        stats.records, stats.facade_nodes,
        "1:1: one record per logical node"
    );
}

#[test]
fn full_lifecycle_with_persistence() {
    let dir = std::env::temp_dir().join(format!("natix-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("repo.natix");
    let options = || RepositoryOptions {
        page_size: 2048,
        ..Default::default()
    };

    let expected = {
        let repo = Repository::create_file(&path, options()).unwrap();
        let play = generate_play(&tiny_corpus(), 0, &mut repo.symbols_mut());
        repo.put_document("play", &play.doc).unwrap();
        repo.set_matrix_rule("SPEECH", "SPEAKER", SplitBehaviour::KeepWithParent);
        repo.schema_mut()
            .register_dtd("play", natix_corpus::shakespeare::PLAY_DTD)
            .unwrap();
        repo.checkpoint().unwrap();
        repo.get_xml("play").unwrap()
    };

    // Re-open: everything is back, documents remain queryable & editable.
    let repo = Repository::open_file(&path, options()).unwrap();
    assert_eq!(repo.get_xml("play").unwrap(), expected);
    let speakers = repo.query("play", "//SPEAKER").unwrap();
    assert!(!speakers.is_empty());
    // Validation against the persisted DTD.
    let doc = repo.get_document("play").unwrap();
    // Lock order: symbols (level 500) before schema (level 800).
    let symbols = repo.symbols();
    repo.schema()
        .validate_document(&doc, &symbols, "play")
        .unwrap();
    drop(symbols);
    // Edit after re-open, checkpoint again, re-open again.
    let id = repo.doc_id("play").unwrap();
    let root = repo.root(id).unwrap();
    let act = repo
        .insert_element(id, root, InsertPos::Last, "ACT")
        .unwrap();
    let title = repo
        .insert_element(id, act, InsertPos::Last, "TITLE")
        .unwrap();
    repo.insert_text(id, title, InsertPos::Last, "ACT VI (apocryphal)")
        .unwrap();
    repo.checkpoint().unwrap();
    drop(repo);

    let repo = Repository::open_file(&path, options()).unwrap();
    assert!(repo
        .get_xml("play")
        .unwrap()
        .contains("ACT VI (apocryphal)"));
    repo.physical_stats("play").unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn queries_agree_between_storage_modes() {
    // The same queries on the same logical documents must return the same
    // answers regardless of physical configuration.
    let cfg = tiny_corpus();
    let queries = [
        "/PLAY/ACT[2]/SCENE[1]//SPEAKER",
        "/PLAY/ACT/SCENE/SPEECH[1]",
        "//STAGEDIR",
    ];
    let mut answers: Vec<Vec<usize>> = Vec::new();
    for matrix in [SplitMatrix::all_other(), SplitMatrix::all_standalone()] {
        let repo = Repository::create_in_memory(RepositoryOptions {
            page_size: 2048,
            matrix,
            ..Default::default()
        })
        .unwrap();
        let plays = generate_corpus(&cfg, &mut repo.symbols_mut());
        for play in &plays {
            repo.put_document(&play.name, &play.doc).unwrap();
        }
        let mut counts = Vec::new();
        for q in &queries {
            let mut total = 0;
            for play in &plays {
                total += repo.query(&play.name, q).unwrap().len();
            }
            counts.push(total);
        }
        answers.push(counts);
    }
    assert_eq!(
        answers[0], answers[1],
        "physical layout must not change query answers"
    );
    assert!(
        answers[0].iter().all(|&n| n > 0),
        "queries must match: {answers:?}"
    );
}

#[test]
fn flat_stream_baseline_agrees_with_native_store() {
    let repo = Repository::create_in_memory(RepositoryOptions {
        page_size: 2048,
        ..Default::default()
    })
    .unwrap();
    let play = generate_play(&tiny_corpus(), 2, &mut repo.symbols_mut());
    let xml =
        natix_xml::write_document(&play.doc, &repo.symbols(), WriteOptions::compact()).unwrap();
    // Native store.
    repo.put_document("native", &play.doc).unwrap();
    // Flat-stream baseline.
    let mut flat = natix::FlatStore::new();
    flat.put(&repo, "flat", &xml).unwrap();
    assert_eq!(
        flat.get(&repo, "flat").unwrap(),
        repo.get_xml("native").unwrap()
    );
    // Structural access through the flat store requires parsing the whole
    // stream; the result matches the native reconstruction.
    let mut syms = repo.symbols().clone();
    let parsed = flat.parse(&repo, "flat", &mut syms).unwrap();
    assert!(parsed == repo.get_document("native").unwrap());
}

#[test]
fn hyperstorm_style_matrix_round_trips() {
    // §5: HyperStorM "is equivalent to our algorithm with a Split Matrix
    // which contains only 0 and ∞ elements": coarse structures standalone,
    // fine structures pinned flat. Configure exactly that shape.
    let repo = Repository::create_in_memory(RepositoryOptions {
        page_size: 2048,
        matrix: SplitMatrix::with_default(SplitBehaviour::Standalone),
        ..Default::default()
    })
    .unwrap();
    let play = generate_play(&tiny_corpus(), 0, &mut repo.symbols_mut());
    // Everything below SPEECH is "flat" (∞); everything above standalone.
    for (parent, child) in [
        ("SPEECH", "SPEAKER"),
        ("SPEECH", "LINE"),
        ("SPEECH", "STAGEDIR"),
    ] {
        repo.set_matrix_rule(parent, child, SplitBehaviour::KeepWithParent);
    }
    // Text literals: keep with whatever parent they have. (#text is a
    // builtin label; pin it under the flat element types.)
    let text = natix_xml::LABEL_TEXT;
    for parent in ["SPEAKER", "LINE", "STAGEDIR", "TITLE", "PERSONA"] {
        let p = repo.symbols_mut().intern_element(parent);
        repo.tree_store()
            .set_matrix_entry(p, text, SplitBehaviour::KeepWithParent);
    }
    repo.put_document("p", &play.doc).unwrap();
    let expected =
        natix_xml::write_document(&play.doc, &repo.symbols(), WriteOptions::compact()).unwrap();
    assert_eq!(repo.get_xml("p").unwrap(), expected);
    let stats = repo.physical_stats("p").unwrap();
    // Far fewer records than pure 1:1 (speeches are flat), far more than
    // native (structure elements standalone).
    assert!(
        stats.records > 100,
        "coarse structures standalone: {stats:?}"
    );
    assert!(
        stats.records < stats.facade_nodes / 2,
        "fine structures flattened: {stats:?}"
    );
    // Queries behave identically under this configuration.
    let speakers = repo.query("p", "//SPEAKER").unwrap();
    assert!(!speakers.is_empty());
}

#[test]
fn heavy_editing_session_stays_consistent() {
    let repo = Repository::create_in_memory(RepositoryOptions {
        page_size: 1024,
        tree_config: natix::TreeConfig {
            merge_enabled: true,
            ..natix::TreeConfig::paper()
        },
        ..Default::default()
    })
    .unwrap();
    let id = repo.create_document("log", "LOG").unwrap();
    let root = repo.root(id).unwrap();
    let mut entries = std::collections::VecDeque::new();
    // A rolling log: append at the end, expire from the front.
    for i in 0..400 {
        let e = repo
            .insert_element(id, root, InsertPos::Last, "ENTRY")
            .unwrap();
        repo.insert_text(
            id,
            e,
            InsertPos::Last,
            &format!("event-{i} {}", "d".repeat(i % 60)),
        )
        .unwrap();
        entries.push_back((i, e));
        if entries.len() > 50 {
            let (_, victim) = entries.pop_front().unwrap();
            repo.delete_node(id, victim).unwrap();
        }
    }
    let kids = repo.children(id, root).unwrap();
    assert_eq!(kids.len(), 50);
    // Remaining entries are the last 50, in order.
    for (offset, &(i, e)) in entries.iter().enumerate() {
        assert_eq!(kids[offset], e);
        assert!(repo
            .text_content(id, e)
            .unwrap()
            .starts_with(&format!("event-{i} ")));
    }
    repo.physical_stats("log").unwrap();
}
