//! Shared helpers for the natix-repro examples and integration tests.
pub use natix;
